// Package timeline aggregates per-layer state transitions into fixed
// virtual-time buckets, answering "where did each component's time go,
// when" — the occupancy view that scalar counters (internal/telemetry) and
// per-request span trees (internal/span) cannot give: rotate-wait share on
// the log disk over the run, staging-buffer sawtooth, queue-depth ramps.
//
// The package follows the repo's observability discipline exactly:
//
//  1. A disabled aggregator is a nil pointer. Every method on *Aggregator
//     and on the instrument handles (*Lane, *Meter, *Mark) is nil-receiver
//     safe and allocation-free when disabled, so instrumented layers call
//     them unguarded on every hot path (the same contract nilguard enforces
//     for trace.Tracer and span.Recorder; timeline handles are in its
//     handleTypes set).
//  2. State is pure virtual time. Buckets are indexed by virtual
//     nanoseconds over a fixed bucket width, lane occupancy is exact int64
//     nanosecond accounting, and meters accumulate in deterministic call
//     order — so every export is byte-identical across same-seed runs and
//     safe for the two-run byte-compare CI jobs.
//  3. Exposition is byte-deterministic and round-trippable: sorted series
//     order, shortest-exact float formatting via telemetry.FormatValue,
//     and a Parse that accepts exactly what WriteCSV emits (see export.go).
//
// Three instrument shapes cover the repo's layers:
//
//   - Lane: an exclusive state machine (disk head: idle/seek/rotate-wait/
//     transfer/...). Enter(state, at) charges the time since the previous
//     transition to the previous state, split exactly across buckets.
//   - Meter: a piecewise-constant level (queue depth, staged bytes).
//     Set/Add integrate value x time; export is the time-weighted mean per
//     bucket.
//   - Mark: a per-bucket event counter (sheds, flushes, events dispatched).
package timeline

import (
	"fmt"
	"sort"
	"time"
)

// seriesKind is the exposition kind of one series.
type seriesKind uint8

const (
	kindOccupancy seriesKind = iota + 1 // int64 ns per bucket
	kindMean                            // value x ns weighted sum per bucket
	kindCount                           // int64 events per bucket
)

func (k seriesKind) String() string {
	switch k {
	case kindOccupancy:
		return "occupancy_ns"
	case kindMean:
		return "mean"
	case kindCount:
		return "count"
	default:
		return "unknown"
	}
}

// series is one registered (component, track, name) stream of buckets.
type series struct {
	component, track, name string
	kind                   seriesKind

	ints   []int64   // occupancy / count buckets
	floats []float64 // mean: per-bucket value x ns sums
}

// key is the registry identity of a series.
func (s *series) key() string { return s.component + "\x00" + s.track + "\x00" + s.name }

// growTo ensures bucket index i exists.
func (s *series) growTo(i int64) {
	if s.kind == kindMean {
		for int64(len(s.floats)) <= i {
			s.floats = append(s.floats, 0)
		}
		return
	}
	for int64(len(s.ints)) <= i {
		s.ints = append(s.ints, 0)
	}
}

// Aggregator buckets state transitions on a fixed virtual-time grid.
// Create with New; a nil *Aggregator is a valid disabled aggregator whose
// instrument constructors return nil (equally disabled) handles.
//
// Registering two series with the same (component, track, name) identity
// panics: it is a wiring bug, and duplicate series would break the
// Parse round-trip contract (mirroring telemetry.Registry).
type Aggregator struct {
	bucketNS int64
	endNS    int64
	series   []*series
	byKey    map[string]bool
	openable []closable // lanes and meters, for Finish
}

// closable is an instrument with an open interval Finish must close.
type closable interface{ close(at int64) }

// New returns an aggregator with the given bucket width. It panics on a
// non-positive width (a construction bug, not a runtime condition).
func New(bucket time.Duration) *Aggregator {
	if bucket <= 0 {
		panic(fmt.Sprintf("timeline: bucket width %v", bucket))
	}
	return &Aggregator{bucketNS: int64(bucket), byKey: make(map[string]bool)}
}

// BucketNS returns the bucket width in virtual nanoseconds (0 when
// disabled).
func (a *Aggregator) BucketNS() int64 {
	if a == nil {
		return 0
	}
	return a.bucketNS
}

// add registers s, panicking on a duplicate identity.
func (a *Aggregator) add(s *series) {
	k := s.key()
	if a.byKey[k] {
		panic(fmt.Sprintf("timeline: duplicate series %s/%s/%s", s.component, s.track, s.name))
	}
	a.byKey[k] = true
	a.series = append(a.series, s)
}

// extend advances the export horizon to at.
func (a *Aggregator) extend(at int64) {
	if at > a.endNS {
		a.endNS = at
	}
}

// chargeNS adds the interval [from, to) to s, split exactly across buckets.
func (a *Aggregator) chargeNS(s *series, from, to int64) {
	if to <= from {
		return
	}
	a.extend(to)
	for from < to {
		b := from / a.bucketNS
		edge := (b + 1) * a.bucketNS
		if edge > to {
			edge = to
		}
		s.growTo(b)
		s.ints[b] += edge - from
		from = edge
	}
}

// chargeWeighted adds v x ns over [from, to) to a mean series.
func (a *Aggregator) chargeWeighted(s *series, from, to int64, v float64) {
	if to <= from {
		return
	}
	a.extend(to)
	if v == 0 {
		return
	}
	for from < to {
		b := from / a.bucketNS
		edge := (b + 1) * a.bucketNS
		if edge > to {
			edge = to
		}
		s.growTo(b)
		s.floats[b] += v * float64(edge-from)
		from = edge
	}
}

// Lane is an exclusive state machine over one component: at any instant it
// is in exactly one of its states, and every transition charges the elapsed
// time to the state being left. A nil *Lane is a valid disabled handle.
type Lane struct {
	agg    *Aggregator
	states []*series
	cur    int
	since  int64
}

// Lane registers an exclusive-state lane under (component, track) with one
// occupancy series per state, named "state/<s>". The lane starts in
// states[0] at virtual time 0. On a nil aggregator it returns a nil
// (disabled) handle; an empty state list panics.
func (a *Aggregator) Lane(component, track string, states []string) *Lane {
	if a == nil {
		return nil
	}
	if len(states) == 0 {
		panic("timeline: Lane with no states")
	}
	l := &Lane{agg: a}
	for _, st := range states {
		s := &series{component: component, track: track, name: "state/" + st, kind: kindOccupancy}
		a.add(s)
		l.states = append(l.states, s)
	}
	a.openable = append(a.openable, l)
	return l
}

// Enter moves the lane into state (an index into the construction list) at
// virtual time at, charging the interval since the previous transition to
// the state being left. Out-of-range states panic (a wiring bug); a
// backwards clock is clamped (nothing is charged).
func (l *Lane) Enter(state int, at int64) {
	if l == nil {
		return
	}
	if state < 0 || state >= len(l.states) {
		panic(fmt.Sprintf("timeline: Enter(%d) on a %d-state lane", state, len(l.states)))
	}
	l.agg.chargeNS(l.states[l.cur], l.since, at)
	l.cur = state
	if at > l.since {
		l.since = at
	}
}

// close charges the open interval through at.
func (l *Lane) close(at int64) {
	l.agg.chargeNS(l.states[l.cur], l.since, at)
	if at > l.since {
		l.since = at
	}
}

// Meter is a piecewise-constant level integrated over time (queue depth,
// staged bytes, write-back flights). A nil *Meter is a valid disabled
// handle. The exported per-bucket value is the time-weighted mean over the
// bucket width (partial trailing buckets are averaged over the full width;
// the bias is deterministic and shared by every export).
type Meter struct {
	agg   *Aggregator
	s     *series
	level float64
	since int64
}

// Meter registers a level series under (component, track, name), starting
// at level 0 at virtual time 0. On a nil aggregator it returns a nil
// (disabled) handle.
func (a *Aggregator) Meter(component, track, name string) *Meter {
	if a == nil {
		return nil
	}
	s := &series{component: component, track: track, name: name, kind: kindMean}
	a.add(s)
	m := &Meter{agg: a, s: s}
	a.openable = append(a.openable, m)
	return m
}

// Set records the level changing to v at virtual time at, charging the
// previous level over the elapsed interval.
func (m *Meter) Set(v float64, at int64) {
	if m == nil {
		return
	}
	m.agg.chargeWeighted(m.s, m.since, at, m.level)
	m.level = v
	if at > m.since {
		m.since = at
	}
}

// Add adjusts the level by d at virtual time at.
func (m *Meter) Add(d float64, at int64) {
	if m == nil {
		return
	}
	m.Set(m.level+d, at)
}

// close charges the open interval through at.
func (m *Meter) close(at int64) {
	m.agg.chargeWeighted(m.s, m.since, at, m.level)
	if at > m.since {
		m.since = at
	}
}

// Mark is a per-bucket event counter (sheds, deadline expiries, staging
// flushes, kernel dispatches). A nil *Mark is a valid disabled handle.
type Mark struct {
	agg *Aggregator
	s   *series
}

// Mark registers an event-count series under (component, track, name). On
// a nil aggregator it returns a nil (disabled) handle.
func (a *Aggregator) Mark(component, track, name string) *Mark {
	if a == nil {
		return nil
	}
	s := &series{component: component, track: track, name: name, kind: kindCount}
	a.add(s)
	return &Mark{agg: a, s: s}
}

// Inc counts one event at virtual time at.
func (k *Mark) Inc(at int64) {
	if k == nil {
		return
	}
	k.Add(1, at)
}

// Add counts n events at virtual time at (n may carry a magnitude, e.g.
// nanoseconds waited, not just a cardinality).
func (k *Mark) Add(n int64, at int64) {
	if k == nil || n == 0 {
		return
	}
	k.agg.extend(at)
	b := at / k.agg.bucketNS
	if b < 0 {
		b = 0
	}
	k.s.growTo(b)
	k.s.ints[b] += n
}

// Finish closes every open lane and meter interval at virtual time at
// (normally the simulation's final clock) and fixes the export horizon.
// Call once, after the run, before exporting; calling Finish again with a
// later at extends the horizon.
func (a *Aggregator) Finish(at int64) {
	if a == nil {
		return
	}
	a.extend(at)
	for _, ins := range a.openable {
		ins.close(at)
	}
}

// sortedSeries returns the series in deterministic exposition order.
func (a *Aggregator) sortedSeries() []*series {
	out := make([]*series, len(a.series))
	copy(out, a.series)
	sort.Slice(out, func(i, j int) bool {
		if out[i].component != out[j].component {
			return out[i].component < out[j].component
		}
		if out[i].track != out[j].track {
			return out[i].track < out[j].track
		}
		return out[i].name < out[j].name
	})
	return out
}
