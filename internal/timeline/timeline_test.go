package timeline

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilDisabled(t *testing.T) {
	var a *Aggregator
	if a.BucketNS() != 0 {
		t.Fatalf("nil BucketNS = %d", a.BucketNS())
	}
	l := a.Lane("disk", "log0", []string{"idle", "seek"})
	m := a.Meter("sched", "log0", "queue_depth")
	k := a.Mark("trail", "driver", "shed_writes")
	if l != nil || m != nil || k != nil {
		t.Fatal("nil aggregator must hand out nil instruments")
	}
	// Every operation on disabled handles is a no-op, never a panic.
	l.Enter(1, 100)
	m.Set(3, 100)
	m.Add(-1, 200)
	k.Inc(100)
	k.Add(5, 200)
	a.Finish(1000)
	if err := a.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestNilDisabledZeroAlloc(t *testing.T) {
	var a *Aggregator
	l := a.Lane("disk", "log0", []string{"idle", "seek"})
	m := a.Meter("sched", "log0", "queue_depth")
	k := a.Mark("trail", "driver", "shed")
	n := testing.AllocsPerRun(100, func() {
		l.Enter(1, 100)
		m.Add(1, 100)
		k.Inc(100)
	})
	if n != 0 {
		t.Fatalf("disabled instruments allocated %v per op", n)
	}
}

func TestLaneOccupancySplitsBuckets(t *testing.T) {
	a := New(100 * time.Nanosecond)
	l := a.Lane("disk", "log0", []string{"idle", "seek", "transfer"})
	l.Enter(1, 50)  // idle [0,50)
	l.Enter(2, 250) // seek [50,250) straddles buckets 0,1,2
	l.Enter(0, 260) // transfer [250,260)
	a.Finish(400)   // idle [260,400)

	want := map[string][]int64{
		"state/idle":     {50, 0, 40, 100},
		"state/seek":     {50, 100, 50},
		"state/transfer": {0, 0, 10},
	}
	for _, s := range a.sortedSeries() {
		w := want[s.name]
		if len(s.ints) != len(w) {
			t.Fatalf("%s: got %v want %v", s.name, s.ints, w)
		}
		for i := range w {
			if s.ints[i] != w[i] {
				t.Fatalf("%s bucket %d: got %d want %d", s.name, i, s.ints[i], w[i])
			}
		}
	}
	// Lane states tile virtual time exactly: sums equal the horizon.
	var tot int64
	for _, s := range a.series {
		for _, v := range s.ints {
			tot += v
		}
	}
	if tot != 400 {
		t.Fatalf("occupancy sums to %d, want 400", tot)
	}
}

func TestMeterTimeWeightedMean(t *testing.T) {
	a := New(100 * time.Nanosecond)
	m := a.Meter("sched", "log0", "queue_depth")
	m.Set(4, 0)
	m.Set(2, 50)  // bucket 0: 4 for 50ns, 2 for 50ns => mean 3
	m.Add(2, 100) // bucket 1: 4 for full bucket => mean 4
	a.Finish(200)

	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tl, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := tl.Lookup("sched", "log0", "queue_depth")
	if s == nil {
		t.Fatal("queue_depth series missing")
	}
	want := []Point{{0, 3}, {1, 4}}
	if len(s.Points) != len(want) {
		t.Fatalf("points %+v, want %+v", s.Points, want)
	}
	for i, p := range want {
		if s.Points[i] != p {
			t.Fatalf("point %d = %+v, want %+v", i, s.Points[i], p)
		}
	}
}

func TestMarkBuckets(t *testing.T) {
	a := New(100 * time.Nanosecond)
	k := a.Mark("trail", "driver", "shed_writes")
	k.Inc(0)
	k.Inc(99)
	k.Add(3, 100)
	k.Inc(250)
	a.Finish(300)

	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tl, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := tl.Lookup("trail", "driver", "shed_writes")
	want := []Point{{0, 2}, {1, 3}, {2, 1}}
	if s == nil || len(s.Points) != len(want) {
		t.Fatalf("points %+v, want %+v", s, want)
	}
	for i, p := range want {
		if s.Points[i] != p {
			t.Fatalf("point %d = %+v, want %+v", i, s.Points[i], p)
		}
	}
	if s.Kind != "count" {
		t.Fatalf("kind = %q", s.Kind)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	a := New(time.Millisecond)
	a.Mark("x", "y", "z")
	a.Meter("x", "y", "z")
}

func TestExportDeterministicAndSorted(t *testing.T) {
	build := func() *Aggregator {
		a := New(100 * time.Nanosecond)
		k := a.Mark("zeta", "t", "n")
		m := a.Meter("alpha", "t", "n")
		l := a.Lane("mid", "t", []string{"idle", "busy"})
		l.Enter(1, 30)
		l.Enter(0, 80)
		m.Set(2, 10)
		k.Inc(40)
		a.Finish(120)
		return a
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical builds exported different bytes")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("export too short:\n%s", b1.String())
	}
	// Registration order was zeta, alpha, mid; export must be sorted.
	var comps []string
	for _, ln := range lines[2:] {
		comps = append(comps, strings.SplitN(ln, ",", 2)[0])
	}
	for i := 1; i < len(comps); i++ {
		if comps[i] < comps[i-1] {
			t.Fatalf("components out of order: %v", comps)
		}
	}

	var j1, j2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON export not deterministic")
	}
}

func TestParseRoundTrip(t *testing.T) {
	a := New(5 * time.Millisecond)
	l := a.Lane("disk", "log0", []string{"idle", "seek", "rotate_wait", "transfer"})
	l.Enter(1, 1_000_000)
	l.Enter(2, 3_000_000)
	l.Enter(3, 9_000_000)
	l.Enter(0, 14_000_000)
	m := a.Meter("trail", "driver", "staged_bytes")
	m.Set(8192, 2_000_000)
	m.Set(0, 12_000_000)
	k := a.Mark("sched", "data0", "shed")
	k.Add(7, 6_000_000)
	a.Finish(20_000_000)

	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	tl, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("Parse of own export failed: %v\n%s", err, raw)
	}
	if tl.BucketNS != 5_000_000 || tl.EndNS != 20_000_000 {
		t.Fatalf("header = %d/%d", tl.BucketNS, tl.EndNS)
	}
	if tl.Buckets() != 4 {
		t.Fatalf("Buckets() = %d", tl.Buckets())
	}
	// Occupancy round-trips exactly.
	s := tl.Lookup("disk", "log0", "state/rotate_wait")
	if s == nil {
		t.Fatal("rotate_wait series missing")
	}
	var occ float64
	for _, p := range s.Points {
		occ += p.Value
	}
	if occ != 6_000_000 {
		t.Fatalf("rotate_wait occupancy = %v, want 6ms", occ)
	}
	// Staged-bytes mean: 8192 held over [2ms,12ms) = 10ms of 20ms.
	s = tl.Lookup("trail", "driver", "staged_bytes")
	var w float64
	for _, p := range s.Points {
		w += p.Value * float64(tl.BucketNS)
	}
	if math.Abs(w-8192*10_000_000) > 1 {
		t.Fatalf("staged byte-ns = %v", w)
	}
}

func TestParseRejects(t *testing.T) {
	head := "# tracklog-timeline v1 bucket_ns=100 end_ns=400\n" + csvHeader + "\n"
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad version", "# nope\n"},
		{"zero bucket", "# tracklog-timeline v1 bucket_ns=0 end_ns=5\n" + csvHeader + "\n"},
		{"missing header", "# tracklog-timeline v1 bucket_ns=100 end_ns=400\nx\n"},
		{"short row", head + "a,b,c\n"},
		{"bad kind", head + "a,b,c,nope,0,1\n"},
		{"bad bucket", head + "a,b,c,count,x,1\n"},
		{"negative bucket", head + "a,b,c,count,-1,1\n"},
		{"zero value", head + "a,b,c,count,0,0\n"},
		{"bad value", head + "a,b,c,count,0,zzz\n"},
		{"empty identity", head + ",b,c,count,0,1\n"},
		{"blank line", head + "a,b,c,count,0,1\n\n"},
		{"dup bucket", head + "a,b,c,count,0,1\na,b,c,count,0,1\n"},
		{"bucket order", head + "a,b,c,count,2,1\na,b,c,count,1,1\n"},
		{"series order", head + "b,b,c,count,0,1\na,b,c,count,0,1\n"},
		{"kind flip", head + "a,b,c,count,0,1\na,b,c,mean,1,1\n"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: Parse accepted bad input", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadTimeline) {
			t.Errorf("%s: error %v does not wrap ErrBadTimeline", tc.name, err)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	in := "# tracklog-timeline v1 bucket_ns=100 end_ns=400\n" + csvHeader + "\na,b,c,count,0,1\na,b,c,count,0,2\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line 4 in error, got %v", err)
	}
}

func FuzzTimelineRoundTrip(f *testing.F) {
	a := New(100 * time.Nanosecond)
	l := a.Lane("disk", "log0", []string{"idle", "seek"})
	l.Enter(1, 30)
	m := a.Meter("sched", "q", "depth")
	m.Set(2.5, 10)
	k := a.Mark("trail", "d", "shed")
	k.Inc(45)
	a.Finish(250)
	var seed bytes.Buffer
	if err := a.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("# tracklog-timeline v1 bucket_ns=1 end_ns=0\n" + csvHeader + "\n")
	f.Add("# tracklog-timeline v1 bucket_ns=5 end_ns=9\n" + csvHeader + "\nx,y,z,mean,0,1.5\n")

	f.Fuzz(func(t *testing.T, in string) {
		// Contract: never panic, all errors wrap the sentinel, and any
		// accepted input is internally consistent.
		tl, err := Parse(strings.NewReader(in))
		if err != nil {
			if !errors.Is(err, ErrBadTimeline) {
				t.Fatalf("non-sentinel error: %v", err)
			}
			return
		}
		if tl.BucketNS <= 0 {
			t.Fatalf("accepted bucket_ns=%d", tl.BucketNS)
		}
		for _, s := range tl.Series {
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Bucket <= s.Points[i-1].Bucket {
					t.Fatalf("accepted non-monotonic buckets in %s", s.Key())
				}
			}
		}
	})
}
