package timeline

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tracklog/internal/telemetry"
)

// ErrBadTimeline is the sentinel wrapped by every Parse failure. Callers
// gate on errors.Is(err, ErrBadTimeline); the wrapping message carries the
// line number.
var ErrBadTimeline = errors.New("malformed timeline export")

// csvHeader is the fixed column header of the CSV exposition.
const csvHeader = "component,track,series,kind,bucket,value"

// value renders bucket i of s in its exposition form: exact integers for
// occupancy and count series, shortest-exact floats (the time-weighted
// bucket mean) for meter series.
func (s *series) value(i int, bucketNS int64) (string, bool) {
	if s.kind == kindMean {
		w := s.floats[i]
		if w == 0 {
			return "", false
		}
		return telemetry.FormatValue(w / float64(bucketNS)), true
	}
	v := s.ints[i]
	if v == 0 {
		return "", false
	}
	return strconv.FormatInt(v, 10), true
}

// WriteCSV writes the byte-deterministic CSV exposition: a version line
// carrying the bucket width and run horizon, the fixed column header, then
// one row per non-zero bucket, sorted by (component, track, series) with
// buckets ascending within each series. Zero buckets and all-zero series
// are omitted. Call Finish before exporting.
func (a *Aggregator) WriteCSV(w io.Writer) error {
	if a == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# tracklog-timeline v1 bucket_ns=%d end_ns=%d\n", a.bucketNS, a.endNS)
	fmt.Fprintln(bw, csvHeader)
	for _, s := range a.sortedSeries() {
		n := len(s.ints)
		if s.kind == kindMean {
			n = len(s.floats)
		}
		for i := 0; i < n; i++ {
			v, ok := s.value(i, a.bucketNS)
			if !ok {
				continue
			}
			fmt.Fprintf(bw, "%s,%s,%s,%s,%d,%s\n", s.component, s.track, s.name, s.kind, i, v)
		}
	}
	return bw.Flush()
}

// WriteJSON writes the same data as WriteCSV in a fixed-field-order JSON
// document (hand-rolled, like every exposition in this repo, so the bytes
// are deterministic). Points are [bucket, value] pairs.
func (a *Aggregator) WriteJSON(w io.Writer) error {
	if a == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"version\":1,\"bucket_ns\":%d,\"end_ns\":%d,\"series\":[", a.bucketNS, a.endNS)
	first := true
	for _, s := range a.sortedSeries() {
		n := len(s.ints)
		if s.kind == kindMean {
			n = len(s.floats)
		}
		wrote := false
		for i := 0; i < n; i++ {
			v, ok := s.value(i, a.bucketNS)
			if !ok {
				continue
			}
			if !wrote {
				if !first {
					bw.WriteString(",")
				}
				first = false
				fmt.Fprintf(bw, "\n{\"component\":%s,\"track\":%s,\"name\":%s,\"kind\":%q,\"points\":[",
					strconv.Quote(s.component), strconv.Quote(s.track), strconv.Quote(s.name), s.kind)
				wrote = true
			} else {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "[%d,%s]", i, v)
		}
		if wrote {
			bw.WriteString("]}")
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// Timeline is a parsed export: what rundiff aligns and diffs.
type Timeline struct {
	BucketNS int64
	EndNS    int64
	Series   []Series
}

// Series is one parsed (component, track, name) stream.
type Series struct {
	Component, Track, Name, Kind string
	Points                       []Point
}

// Point is one non-zero bucket.
type Point struct {
	Bucket int64
	Value  float64
}

// Key returns the series identity used for cross-run alignment.
func (s *Series) Key() string { return s.Component + "/" + s.Track + "/" + s.Name }

// Lookup returns the series with the given identity, or nil.
func (t *Timeline) Lookup(component, track, name string) *Series {
	if t == nil {
		return nil
	}
	for i := range t.Series {
		s := &t.Series[i]
		if s.Component == component && s.Track == track && s.Name == name {
			return s
		}
	}
	return nil
}

// Buckets returns the number of buckets covered by the run horizon.
func (t *Timeline) Buckets() int64 {
	if t == nil || t.BucketNS <= 0 {
		return 0
	}
	return (t.EndNS + t.BucketNS - 1) / t.BucketNS
}

// badLine wraps ErrBadTimeline with a line number and reason.
func badLine(n int, format string, args ...interface{}) error {
	return fmt.Errorf("timeline line %d: %s: %w", n, fmt.Sprintf(format, args...), ErrBadTimeline)
}

var kindNames = map[string]bool{
	kindOccupancy.String(): true,
	kindMean.String():      true,
	kindCount.String():     true,
}

// Parse reads a CSV exposition as written by WriteCSV. It is strict: the
// version line, header, sort order, and bucket monotonicity are all
// enforced, so any accepted input is byte-reproducible by re-export. All
// failures wrap ErrBadTimeline (never panic), making this the fuzz surface
// for FuzzTimelineRoundTrip and the loader rundiff builds on.
func Parse(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	next := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		return sc.Text(), true
	}

	head, ok := next()
	if !ok {
		return nil, badLine(1, "missing version line")
	}
	var t Timeline
	if n, err := fmt.Sscanf(head, "# tracklog-timeline v1 bucket_ns=%d end_ns=%d", &t.BucketNS, &t.EndNS); n != 2 || err != nil {
		return nil, badLine(1, "bad version line %q", head)
	}
	if t.BucketNS <= 0 || t.EndNS < 0 {
		return nil, badLine(1, "bad bucket_ns/end_ns in %q", head)
	}
	if h, ok := next(); !ok || h != csvHeader {
		return nil, badLine(line+1, "missing column header")
	}

	var cur *Series
	for {
		row, ok := next()
		if !ok {
			break
		}
		if row == "" {
			return nil, badLine(line, "blank line")
		}
		f := strings.Split(row, ",")
		if len(f) != 6 {
			return nil, badLine(line, "want 6 fields, got %d", len(f))
		}
		comp, track, name, kind := f[0], f[1], f[2], f[3]
		if comp == "" || track == "" || name == "" {
			return nil, badLine(line, "empty series identity")
		}
		if !kindNames[kind] {
			return nil, badLine(line, "unknown kind %q", kind)
		}
		bucket, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil || bucket < 0 {
			return nil, badLine(line, "bad bucket %q", f[4])
		}
		val, err := strconv.ParseFloat(f[5], 64)
		if err != nil || val == 0 {
			return nil, badLine(line, "bad value %q", f[5])
		}
		if cur != nil && cur.Component == comp && cur.Track == track && cur.Name == name {
			if kind != cur.Kind {
				return nil, badLine(line, "kind changed mid-series")
			}
			if bucket <= cur.Points[len(cur.Points)-1].Bucket {
				return nil, badLine(line, "buckets not ascending")
			}
		} else {
			if cur != nil && !seriesLess(cur, comp, track, name) {
				return nil, badLine(line, "series out of order")
			}
			t.Series = append(t.Series, Series{Component: comp, Track: track, Name: name, Kind: kind})
			cur = &t.Series[len(t.Series)-1]
		}
		cur.Points = append(cur.Points, Point{Bucket: bucket, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeline: %v: %w", err, ErrBadTimeline)
	}
	return &t, nil
}

// seriesLess reports whether cur sorts strictly before (comp, track, name).
func seriesLess(cur *Series, comp, track, name string) bool {
	if cur.Component != comp {
		return cur.Component < comp
	}
	if cur.Track != track {
		return cur.Track < track
	}
	return cur.Name < name
}

// ParseFile reads and parses a timeline export from disk.
func ParseFile(path string) (*Timeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}
