// Package qos implements overload protection for the storage stack:
// bounded admission with explicit shedding, per-request virtual-time
// deadlines, and per-class retry budgets.
//
// The stack without QoS is an open funnel — sched.Queue and the Trail log
// queue grow without bound, so offered load beyond what the disks absorb
// turns into unbounded latency. A qos.Policy closes the funnel: requests
// beyond the admission bound complete immediately with
// blockdev.ErrOverload, requests whose deadline passes complete with
// blockdev.ErrDeadlineExceeded instead of occupying the disk, and retries
// are charged against a per-class budget so a sick device cannot pin a
// worker forever.
//
// Everything here runs on the simulator's virtual clock. Deadline checks
// are lazy — evaluated at admission, at wakeup, and before each retry —
// never on wall-clock timers, so same-seed runs stay byte-identical.
//
// A nil *Policy disables QoS entirely: every accessor is nil-safe and
// returns the permissive default, so drivers hold a *Policy and never
// branch on nil themselves.
package qos

import (
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/sim"
)

// Policy is the knob set for one driver stack. The zero value of every
// field means "no limit"; a nil *Policy means QoS is off.
type Policy struct {
	// MaxQueue bounds the driver's admission queue (Trail's log queue, a
	// RAID controller's waiter list). Arrivals beyond the bound are shed
	// with blockdev.ErrOverload. 0 = unbounded.
	MaxQueue int

	// MaxDepth bounds each sched.Queue's pending-request depth. When full,
	// the lowest-class queued request is shed to admit a higher-class
	// newcomer; otherwise the newcomer is shed. 0 = unbounded.
	MaxDepth int

	// DefaultDeadline, when nonzero, is applied at client submit to
	// requests that carry no explicit deadline: the absolute deadline is
	// submit time + DefaultDeadline on the virtual clock.
	DefaultDeadline time.Duration

	// Retry budgets per class: the number of attempts (initial + retries)
	// a transient fault may consume before the request fails. 0 selects
	// the driver's historical constant for that path, so enabling QoS
	// without setting budgets changes nothing about retry behaviour.
	BackgroundRetries  int
	NormalRetries      int
	InteractiveRetries int

	// HighWater/LowWater throttle Trail foreground writes against
	// write-back progress: when staged-but-unwritten bytes reach
	// HighWater, new foreground writes stall until write-back drains
	// staging below LowWater. 0 = no throttle.
	HighWater int
	LowWater  int
}

// Default returns a policy with bounds sized for the simulated drives:
// admission queue and sched depth bounded, a generous default deadline,
// modest per-class retry budgets, and the staging throttle engaged at one
// megabyte.
func Default() *Policy {
	return &Policy{
		MaxQueue:           64,
		MaxDepth:           32,
		DefaultDeadline:    2 * time.Second,
		BackgroundRetries:  2,
		NormalRetries:      3,
		InteractiveRetries: 5,
		HighWater:          1 << 20,
		LowWater:           1 << 19,
	}
}

// Enabled reports whether p imposes any policy at all.
func (p *Policy) Enabled() bool { return p != nil }

// QueueBound returns the admission-queue bound, 0 if unbounded.
func (p *Policy) QueueBound() int {
	if p == nil {
		return 0
	}
	return p.MaxQueue
}

// DepthBound returns the sched depth bound, 0 if unbounded.
func (p *Policy) DepthBound() int {
	if p == nil {
		return 0
	}
	return p.MaxDepth
}

// RetryBudget returns the attempt budget for class c, or fallback (the
// driver's historical constant) when unset or QoS is off.
func (p *Policy) RetryBudget(c blockdev.Class, fallback int) int {
	if p == nil {
		return fallback
	}
	var b int
	switch c {
	case blockdev.ClassBackground:
		b = p.BackgroundRetries
	case blockdev.ClassInteractive:
		b = p.InteractiveRetries
	default:
		b = p.NormalRetries
	}
	if b <= 0 {
		return fallback
	}
	return b
}

// Deadline resolves a request's absolute deadline at submit time now:
// an explicit deadline wins; otherwise DefaultDeadline applies; zero
// means none.
func (p *Policy) Deadline(now sim.Time, explicit sim.Time) sim.Time {
	if explicit != 0 {
		return explicit
	}
	if p == nil || p.DefaultDeadline <= 0 {
		return 0
	}
	return now.Add(p.DefaultDeadline)
}

// ClassBound returns the admission-queue occupancy at which class c is
// shed, implementing "lowest priority first": Background is refused once
// the queue is a quarter full, Normal at three quarters, Interactive only
// when completely full. Returns 0 (no bound) when QoS is off or MaxQueue
// is unbounded.
func (p *Policy) ClassBound(c blockdev.Class) int {
	max := p.QueueBound()
	if max == 0 {
		return 0
	}
	switch c {
	case blockdev.ClassBackground:
		b := max / 4
		if b < 1 {
			b = 1
		}
		return b
	case blockdev.ClassInteractive:
		return max
	default:
		b := max * 3 / 4
		if b < 1 {
			b = 1
		}
		return b
	}
}

// Stats counts a controller's admission decisions.
type Stats struct {
	Admitted   int64
	Shed       int64 // refused with ErrOverload
	Expired    int64 // refused or abandoned with ErrDeadlineExceeded
	MaxWaiters int   // high-water mark of the waiter list
}

// waiter is one blocked admission request, granted in priority order.
type waiter struct {
	class blockdev.Class
	opts  blockdev.Options
	seq   int64
	grant *sim.Event
	err   error
}

// Controller is a bounded admission gate: at most MaxInFlight requests
// proceed concurrently, at most Policy.MaxQueue wait, and waiters are
// granted in class-priority order (FIFO within a class). RAID uses one
// per array so that under overload the scrubber (Background) starves
// before client traffic does.
type Controller struct {
	env *sim.Env
	pol *Policy

	// MaxInFlight bounds concurrent admitted requests. Must be > 0.
	maxInFlight int

	inFlight int
	waiters  []*waiter
	seq      int64
	stats    Stats
}

// NewController creates an admission gate over pol admitting at most
// maxInFlight concurrent requests. pol may be nil (unbounded queue,
// concurrency still bounded).
func NewController(env *sim.Env, pol *Policy, maxInFlight int) *Controller {
	if maxInFlight <= 0 {
		maxInFlight = 1
	}
	return &Controller{env: env, pol: pol, maxInFlight: maxInFlight}
}

// Stats returns a copy of the admission counters.
func (c *Controller) Stats() Stats { return c.stats }

// Waiting returns the current waiter-list length.
func (c *Controller) Waiting() int { return len(c.waiters) }

// Admit blocks p until the request may proceed, or fails it:
// blockdev.ErrOverload when the waiter list is at the class's bound,
// blockdev.ErrDeadlineExceeded when the deadline passes before a slot
// frees. A nil return must be paired with exactly one Release.
func (c *Controller) Admit(p *sim.Proc, opts blockdev.Options) error {
	now := p.Now()
	if opts.Expired(now) {
		c.stats.Expired++
		return blockdev.ErrDeadlineExceeded
	}
	if bound := c.pol.ClassBound(opts.Class); bound > 0 && len(c.waiters) >= bound {
		c.stats.Shed++
		return blockdev.ErrOverload
	}
	if c.inFlight < c.maxInFlight && len(c.waiters) == 0 {
		c.inFlight++
		c.stats.Admitted++
		return nil
	}
	w := &waiter{class: opts.Class, opts: opts, seq: c.seq, grant: sim.NewEvent(c.env)}
	c.seq++
	c.insert(w)
	if n := len(c.waiters); n > c.stats.MaxWaiters {
		c.stats.MaxWaiters = n
	}
	w.grant.Wait(p)
	return w.err
}

// insert places w in grant order: higher shed-order (higher priority)
// first, FIFO within equal priority.
func (c *Controller) insert(w *waiter) {
	i := len(c.waiters)
	for i > 0 {
		prev := c.waiters[i-1]
		if prev.class.ShedOrder() >= w.class.ShedOrder() {
			break
		}
		i--
	}
	c.waiters = append(c.waiters, nil)
	copy(c.waiters[i+1:], c.waiters[i:])
	c.waiters[i] = w
}

// Release returns an admitted slot and grants it to the highest-priority
// waiter whose deadline still holds; waiters found expired complete with
// ErrDeadlineExceeded without consuming the slot.
func (c *Controller) Release() {
	c.inFlight--
	now := c.env.Now()
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.opts.Expired(now) {
			c.stats.Expired++
			w.err = blockdev.ErrDeadlineExceeded
			w.grant.Trigger()
			continue
		}
		c.inFlight++
		c.stats.Admitted++
		w.grant.Trigger()
		return
	}
}
