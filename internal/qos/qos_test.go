package qos

import (
	"errors"
	"testing"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/sim"
)

func TestNilPolicyIsPermissive(t *testing.T) {
	var p *Policy
	if p.Enabled() {
		t.Error("nil policy reports enabled")
	}
	if p.QueueBound() != 0 || p.DepthBound() != 0 {
		t.Error("nil policy has bounds")
	}
	if got := p.RetryBudget(blockdev.ClassNormal, 7); got != 7 {
		t.Errorf("RetryBudget fallback = %d, want 7", got)
	}
	if got := p.Deadline(1000, 0); got != 0 {
		t.Errorf("nil policy deadline = %d, want 0", got)
	}
	if got := p.Deadline(1000, 555); got != 555 {
		t.Errorf("explicit deadline = %d, want 555", got)
	}
	if p.ClassBound(blockdev.ClassBackground) != 0 {
		t.Error("nil policy has a class bound")
	}
}

func TestPolicyDeadlineAndBudgets(t *testing.T) {
	p := &Policy{DefaultDeadline: time.Millisecond, NormalRetries: 2, InteractiveRetries: 9}
	if got := p.Deadline(sim.Time(1000), 0); got != sim.Time(1000).Add(time.Millisecond) {
		t.Errorf("default deadline = %d", got)
	}
	if got := p.Deadline(sim.Time(1000), 42); got != 42 {
		t.Errorf("explicit deadline overridden: %d", got)
	}
	if got := p.RetryBudget(blockdev.ClassNormal, 7); got != 2 {
		t.Errorf("normal budget = %d, want 2", got)
	}
	if got := p.RetryBudget(blockdev.ClassInteractive, 7); got != 9 {
		t.Errorf("interactive budget = %d, want 9", got)
	}
	// Unset class budget falls back to the historical constant.
	if got := p.RetryBudget(blockdev.ClassBackground, 7); got != 7 {
		t.Errorf("background budget = %d, want fallback 7", got)
	}
}

func TestClassBoundsOrderShedding(t *testing.T) {
	p := &Policy{MaxQueue: 64}
	bg := p.ClassBound(blockdev.ClassBackground)
	no := p.ClassBound(blockdev.ClassNormal)
	in := p.ClassBound(blockdev.ClassInteractive)
	if !(bg < no && no < in) {
		t.Errorf("class bounds not ordered: bg=%d normal=%d interactive=%d", bg, no, in)
	}
	if in != 64 {
		t.Errorf("interactive bound = %d, want MaxQueue", in)
	}
}

func TestControllerAdmitsUpToLimit(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := NewController(env, &Policy{MaxQueue: 8}, 2)
	var order []string
	env.Go("ops", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if err := c.Admit(p, blockdev.Options{}); err != nil {
				t.Errorf("admit %d: %v", i, err)
			}
		}
		order = append(order, "two-in-flight")
	})
	env.Run()
	if len(order) != 1 {
		t.Fatal("admissions blocked below the concurrency limit")
	}
	st := c.Stats()
	if st.Admitted != 2 || st.Shed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestControllerGrantsByClassPriority(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := NewController(env, &Policy{MaxQueue: 8}, 1)
	var got []string
	env.Go("holder", func(p *sim.Proc) {
		if err := c.Admit(p, blockdev.Options{}); err != nil {
			t.Errorf("holder admit: %v", err)
		}
		p.Sleep(time.Millisecond)
		c.Release()
	})
	wait := func(name string, class blockdev.Class) {
		env.Go(name, func(p *sim.Proc) {
			if err := c.Admit(p, blockdev.Options{Class: class}); err != nil {
				t.Errorf("%s admit: %v", name, err)
				return
			}
			got = append(got, name)
			c.Release()
		})
	}
	// Submitted background first, interactive last: priority must win.
	wait("background", blockdev.ClassBackground)
	wait("normal", blockdev.ClassNormal)
	wait("interactive", blockdev.ClassInteractive)
	env.Run()
	want := []string{"interactive", "normal", "background"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("grant order = %v, want %v", got, want)
	}
}

func TestControllerShedsLowClassFirst(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	// MaxQueue 4: background bound 1, normal bound 3, interactive bound 4.
	c := NewController(env, &Policy{MaxQueue: 4}, 1)
	env.Go("ops", func(p *sim.Proc) {
		if err := c.Admit(p, blockdev.Options{}); err != nil { // occupies the slot
			t.Fatalf("first admit: %v", err)
		}
		// Fill the waiter list to the background bound.
		for i := 0; i < 1; i++ {
			env.Go("w", func(p *sim.Proc) {
				if err := c.Admit(p, blockdev.Options{}); err == nil {
					c.Release()
				}
			})
		}
		p.Sleep(time.Microsecond) // let the waiter park
		if err := c.Admit(p, blockdev.Options{Class: blockdev.ClassBackground}); !errors.Is(err, blockdev.ErrOverload) {
			t.Errorf("background admit with 1 waiter = %v, want ErrOverload", err)
		}
		c.Release()
	})
	env.Run()
	if c.Stats().Shed != 1 {
		t.Errorf("shed = %d, want 1", c.Stats().Shed)
	}
}

func TestControllerExpiresWaiters(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := NewController(env, &Policy{MaxQueue: 8}, 1)
	var waiterErr error
	env.Go("holder", func(p *sim.Proc) {
		if err := c.Admit(p, blockdev.Options{}); err != nil {
			t.Errorf("holder admit: %v", err)
		}
		p.Sleep(10 * time.Millisecond) // hold past the waiter's deadline
		c.Release()
	})
	env.Go("waiter", func(p *sim.Proc) {
		waiterErr = c.Admit(p, blockdev.Options{Deadline: p.Now().Add(time.Millisecond)})
		if waiterErr == nil {
			c.Release()
		}
	})
	env.Run()
	if !errors.Is(waiterErr, blockdev.ErrDeadlineExceeded) {
		t.Errorf("waiter error = %v, want ErrDeadlineExceeded", waiterErr)
	}
	if c.Stats().Expired != 1 {
		t.Errorf("expired = %d, want 1", c.Stats().Expired)
	}
}

func TestControllerRejectsExpiredAtAdmission(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := NewController(env, nil, 1)
	env.Go("op", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		err := c.Admit(p, blockdev.Options{Deadline: p.Now().Add(-time.Microsecond)})
		if !errors.Is(err, blockdev.ErrDeadlineExceeded) {
			t.Errorf("admit past deadline = %v, want ErrDeadlineExceeded", err)
		}
	})
	env.Run()
}
