// Package bufcache implements a fixed-capacity page cache with pin/dirty
// semantics over a block device, modelling the role the EXT2 buffer cache
// plays in the paper's system under test: reads miss to the data disk, dirty
// pages are written back on eviction or explicit flush.
package bufcache

import (
	"container/list"
	"fmt"

	"tracklog/internal/blockdev"
	"tracklog/internal/geom"
	"tracklog/internal/sim"
)

// PageSectors is the number of sectors per cache page (4 KiB pages).
const PageSectors = 8

// PageSize is the page size in bytes.
const PageSize = PageSectors * geom.SectorSize

// Page is a cached page frame. Callers must hold a pin (from Get) while
// touching Data and must Release it afterwards.
type Page struct {
	ID    int64
	Data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses  int64
	Evictions     int64
	DirtyWrites   int64 // device writes due to eviction or flush
	PagesResident int
}

// Cache is a fixed-size page cache over one device. Not safe for real
// concurrency; simulation processes interleave cooperatively.
type Cache struct {
	dev      blockdev.Device
	capacity int
	pages    map[int64]*Page
	lru      *list.List // front = most recent
	stats    Stats
}

// New returns a cache of capacity pages over dev.
func New(dev blockdev.Device, capacity int) *Cache {
	if capacity < 1 {
		panic("bufcache: capacity must be >= 1")
	}
	return &Cache{
		dev:      dev,
		capacity: capacity,
		pages:    make(map[int64]*Page),
		lru:      list.New(),
	}
}

// Capacity returns the cache size in pages.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.PagesResident = len(c.pages)
	return s
}

// pageLBA returns the device LBA of a page.
func pageLBA(id int64) int64 { return id * PageSectors }

// Get pins and returns the page, reading it from the device on a miss.
func (c *Cache) Get(p *sim.Proc, id int64) (*Page, error) {
	if pg, ok := c.pages[id]; ok {
		c.stats.Hits++
		pg.pins++
		c.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	c.stats.Misses++
	if err := c.makeRoom(p); err != nil {
		return nil, err
	}
	data, err := c.dev.Read(p, pageLBA(id), PageSectors)
	if err != nil {
		return nil, fmt.Errorf("bufcache: page %d: %w", id, err)
	}
	// The read may have yielded; another process may have faulted the same
	// page in meanwhile.
	if pg, ok := c.pages[id]; ok {
		pg.pins++
		c.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	pg := &Page{ID: id, Data: data, pins: 1}
	pg.elem = c.lru.PushFront(pg)
	c.pages[id] = pg
	return pg, nil
}

// GetZero pins a page frame without reading the device, for pages about to
// be fully overwritten (new allocations).
func (c *Cache) GetZero(p *sim.Proc, id int64) (*Page, error) {
	if pg, ok := c.pages[id]; ok {
		pg.pins++
		c.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	if err := c.makeRoom(p); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: make([]byte, PageSize), pins: 1}
	pg.elem = c.lru.PushFront(pg)
	c.pages[id] = pg
	return pg, nil
}

// makeRoom evicts LRU unpinned pages until a frame is free.
func (c *Cache) makeRoom(p *sim.Proc) error {
	for len(c.pages) >= c.capacity {
		victim := c.lruVictim()
		if victim == nil {
			return fmt.Errorf("bufcache: all %d pages pinned", c.capacity)
		}
		if victim.dirty {
			if err := c.writePage(p, victim); err != nil {
				return err
			}
		}
		c.stats.Evictions++
		c.lru.Remove(victim.elem)
		delete(c.pages, victim.ID)
	}
	return nil
}

// lruVictim returns the least recently used unpinned page, or nil.
func (c *Cache) lruVictim() *Page {
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*Page)
		if pg.pins == 0 {
			return pg
		}
	}
	return nil
}

func (c *Cache) writePage(p *sim.Proc, pg *Page) error {
	if err := c.dev.Write(p, pageLBA(pg.ID), PageSectors, pg.Data); err != nil {
		return fmt.Errorf("bufcache: writing page %d: %w", pg.ID, err)
	}
	pg.dirty = false
	c.stats.DirtyWrites++
	return nil
}

// MarkDirty flags a pinned page as modified.
func (c *Cache) MarkDirty(pg *Page) {
	if pg.pins <= 0 {
		panic("bufcache: MarkDirty on unpinned page")
	}
	pg.dirty = true
}

// Release drops one pin.
func (c *Cache) Release(pg *Page) {
	if pg.pins <= 0 {
		panic("bufcache: Release on unpinned page")
	}
	pg.pins--
}

// FlushAll writes every dirty page to the device (checkpoint).
func (c *Cache) FlushAll(p *sim.Proc) error {
	for _, pg := range c.pages {
		if pg.dirty {
			if err := c.writePage(p, pg); err != nil {
				return err
			}
		}
	}
	return nil
}

// DirtyPages returns the number of dirty resident pages.
func (c *Cache) DirtyPages() int {
	n := 0
	for _, pg := range c.pages {
		if pg.dirty {
			n++
		}
	}
	return n
}
