package bufcache

import (
	"testing"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/geom"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
)

func newRig(capacity int) (*sim.Env, *Cache, *disk.Disk) {
	env := sim.NewEnv()
	d := disk.New(env, disk.Params{
		Name:            "d",
		RPM:             6000,
		Geom:            geom.Uniform(200, 2, 60),
		SeekT2T:         time.Millisecond,
		SeekAvg:         5 * time.Millisecond,
		SeekMax:         10 * time.Millisecond,
		HeadSwitch:      500 * time.Microsecond,
		ReadOverhead:    300 * time.Microsecond,
		WriteOverhead:   600 * time.Microsecond,
		WriteSettle:     100 * time.Microsecond,
		WriteTurnaround: time.Millisecond,
	})
	dev := stddisk.New(env, d, blockdev.DevID{Major: 3}, sched.LOOK)
	return env, New(dev, capacity), d
}

func run(env *sim.Env, fn func(p *sim.Proc)) {
	env.Go("test", fn)
	env.Run()
}

func TestMissThenHit(t *testing.T) {
	env, c, _ := newRig(4)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, err := c.Get(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(pg)
		pg2, err := c.Get(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		if pg2 != pg {
			t.Error("second Get returned different frame")
		}
		c.Release(pg2)
	})
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	env, c, d := newRig(2)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, _ := c.Get(p, 1)
		pg.Data[0] = 0x77
		c.MarkDirty(pg)
		c.Release(pg)
		// Fill the cache to force eviction of page 1.
		for id := int64(2); id <= 4; id++ {
			pg, err := c.Get(p, id)
			if err != nil {
				t.Fatal(err)
			}
			c.Release(pg)
		}
	})
	if got := d.MediaRead(PageSectors, 1); got[0] != 0x77 {
		t.Error("dirty page not written back on eviction")
	}
	if c.Stats().DirtyWrites != 1 || c.Stats().Evictions < 1 {
		t.Errorf("stats %+v", c.Stats())
	}
}

func TestCleanEvictionSkipsWrite(t *testing.T) {
	env, c, d := newRig(1)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, _ := c.Get(p, 1)
		c.Release(pg)
		pg, _ = c.Get(p, 2)
		c.Release(pg)
	})
	if d.Stats().Writes != 0 {
		t.Error("clean eviction wrote to disk")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	env, c, _ := newRig(1)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, _ := c.Get(p, 1)
		// Cache full with a pinned page: next Get must fail.
		if _, err := c.Get(p, 2); err == nil {
			t.Error("Get succeeded with all pages pinned")
		}
		c.Release(pg)
		if _, err := c.Get(p, 2); err != nil {
			t.Errorf("Get after release: %v", err)
		}
	})
}

func TestGetZeroSkipsRead(t *testing.T) {
	env, c, d := newRig(4)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, err := c.GetZero(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(pg)
	})
	if d.Stats().Reads != 0 {
		t.Error("GetZero read the device")
	}
}

func TestFlushAll(t *testing.T) {
	env, c, d := newRig(8)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		for id := int64(1); id <= 3; id++ {
			pg, _ := c.Get(p, id)
			pg.Data[0] = byte(id)
			c.MarkDirty(pg)
			c.Release(pg)
		}
		if c.DirtyPages() != 3 {
			t.Errorf("dirty = %d", c.DirtyPages())
		}
		if err := c.FlushAll(p); err != nil {
			t.Fatal(err)
		}
		if c.DirtyPages() != 0 {
			t.Error("dirty pages after FlushAll")
		}
	})
	for id := int64(1); id <= 3; id++ {
		if got := d.MediaRead(id*PageSectors, 1); got[0] != byte(id) {
			t.Errorf("page %d not flushed", id)
		}
	}
}

func TestReleasePanicsWhenUnpinned(t *testing.T) {
	env, c, _ := newRig(2)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, _ := c.Get(p, 1)
		c.Release(pg)
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		c.Release(pg)
	})
}

func TestCapacityRespected(t *testing.T) {
	env, c, _ := newRig(3)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		for id := int64(1); id <= 10; id++ {
			pg, err := c.Get(p, id)
			if err != nil {
				t.Fatal(err)
			}
			c.Release(pg)
		}
	})
	if got := c.Stats().PagesResident; got > 3 {
		t.Errorf("resident = %d > capacity 3", got)
	}
}

func TestEvictedPageRoundTripsThroughDevice(t *testing.T) {
	env, c, _ := newRig(2)
	defer env.Close()
	run(env, func(p *sim.Proc) {
		pg, _ := c.GetZero(p, 5)
		copy(pg.Data, []byte("survives eviction"))
		c.MarkDirty(pg)
		c.Release(pg)
		// Evict page 5 by filling the cache.
		for id := int64(10); id < 13; id++ {
			x, err := c.Get(p, id)
			if err != nil {
				t.Fatal(err)
			}
			c.Release(x)
		}
		// Fault it back in: contents must have round-tripped via the disk.
		pg2, err := c.Get(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Release(pg2)
		if string(pg2.Data[:17]) != "survives eviction" {
			t.Errorf("page content lost across eviction: %q", pg2.Data[:17])
		}
	})
}

func TestConcurrentFaultsSamePage(t *testing.T) {
	env, c, _ := newRig(4)
	defer env.Close()
	var frames []*Page
	for i := 0; i < 3; i++ {
		env.Go("faulter", func(p *sim.Proc) {
			pg, err := c.Get(p, 42)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			frames = append(frames, pg)
			p.Sleep(time.Millisecond)
			c.Release(pg)
		})
	}
	env.Run()
	if len(frames) != 3 {
		t.Fatalf("faults = %d", len(frames))
	}
	// All processes must share one frame (no double-fault duplication).
	if frames[0] != frames[1] || frames[1] != frames[2] {
		t.Error("same page faulted into multiple frames")
	}
}
