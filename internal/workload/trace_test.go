package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tracklog/internal/sim"
)

func TestPatternsStayInBounds(t *testing.T) {
	rng := sim.NewRand(1)
	patterns := []Pattern{UniformPattern{}, &SequentialPattern{}, NewZipf(500, 0.99)}
	const devSectors, sectors = 100000, 8
	for _, pat := range patterns {
		for i := 0; i < 5000; i++ {
			lba := pat.Next(rng, devSectors, sectors)
			if lba < 0 || lba+sectors > devSectors {
				t.Fatalf("%v: target %d out of bounds", pat, lba)
			}
			if lba%sectors != 0 {
				t.Fatalf("%v: target %d unaligned", pat, lba)
			}
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	p := &SequentialPattern{}
	rng := sim.NewRand(1)
	seen := map[int64]bool{}
	for i := 0; i < 20; i++ {
		seen[p.Next(rng, 64, 8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("sequential over 8 slots visited %d distinct targets", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	rng := sim.NewRand(7)
	counts := map[int64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[z.Next(rng, 1000*8, 8)]++
	}
	// The hottest slot should absorb far more than the uniform share.
	if counts[0] < n/200 {
		t.Errorf("slot 0 got %d of %d; zipf skew missing", counts[0], n)
	}
	if counts[0] <= counts[8*500] {
		t.Error("hot slot not hotter than the middle")
	}
}

func TestTraceSerializeRoundTrip(t *testing.T) {
	tr := SynthesizeTrace(50, NewZipf(100, 0.9), 0.7, 8, time.Millisecond, 100000, 3)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("ops %d != %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		a, b := tr.Ops[i], back.Ops[i]
		// Serialization rounds to microseconds.
		if a.At.Truncate(time.Microsecond) != b.At || a.Write != b.Write || a.LBA != b.LBA || a.Sectors != b.Sectors {
			t.Fatalf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a trace",
		"100 X 5 1",
		"-5 W 5 1",
		"100 W -1 1",
		"100 W 5 0",
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Comments and blanks are fine.
	ok := "# comment\n\n100 W 5 1\n"
	tr, err := ParseTrace(strings.NewReader(ok))
	if err != nil || len(tr.Ops) != 1 {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestReplayAgainstBaseline(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	tr := SynthesizeTrace(30, UniformPattern{}, 0.5, 4, 5*time.Millisecond, dev.Sectors(), 11)
	res, err := Replay(env, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads.Count()+res.Writes.Count() != 30 {
		t.Errorf("replayed %d+%d of 30", res.Reads.Count(), res.Writes.Count())
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestReplayOpenLoopTiming(t *testing.T) {
	// With huge gaps, each op is issued on schedule (no lag); elapsed
	// tracks the trace length, not the device speed.
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	// Fixed 200 ms spacing (SynthesizeTrace's exponential gaps can dip
	// below the device service time and legitimately lag).
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		tr.Ops = append(tr.Ops, TraceOp{
			At: time.Duration(i) * 200 * time.Millisecond, Write: true, LBA: int64(i * 100), Sectors: 1,
		})
	}
	res, err := Replay(env, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lagged != 0 {
		t.Errorf("lagged = %d with 200ms gaps", res.Lagged)
	}
	if res.Elapsed < tr.Ops[len(tr.Ops)-1].At {
		t.Error("elapsed shorter than the trace span")
	}
}
