package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tracklog/internal/sim"
)

func TestPatternsStayInBounds(t *testing.T) {
	rng := sim.NewRand(1)
	patterns := []Pattern{UniformPattern{}, &SequentialPattern{}, NewZipf(500, 0.99)}
	const devSectors, sectors = 100000, 8
	for _, pat := range patterns {
		for i := 0; i < 5000; i++ {
			lba := pat.Next(rng, devSectors, sectors)
			if lba < 0 || lba+sectors > devSectors {
				t.Fatalf("%v: target %d out of bounds", pat, lba)
			}
			if lba%sectors != 0 {
				t.Fatalf("%v: target %d unaligned", pat, lba)
			}
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	p := &SequentialPattern{}
	rng := sim.NewRand(1)
	seen := map[int64]bool{}
	for i := 0; i < 20; i++ {
		seen[p.Next(rng, 64, 8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("sequential over 8 slots visited %d distinct targets", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	rng := sim.NewRand(7)
	counts := map[int64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[z.Next(rng, 1000*8, 8)]++
	}
	// The hottest slot should absorb far more than the uniform share.
	if counts[0] < n/200 {
		t.Errorf("slot 0 got %d of %d; zipf skew missing", counts[0], n)
	}
	if counts[0] <= counts[8*500] {
		t.Error("hot slot not hotter than the middle")
	}
}

func TestTraceSerializeRoundTrip(t *testing.T) {
	tr := SynthesizeTrace(50, NewZipf(100, 0.9), 0.7, 8, time.Millisecond, 100000, 3)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("ops %d != %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		a, b := tr.Ops[i], back.Ops[i]
		// Serialization rounds to microseconds.
		if a.At.Truncate(time.Microsecond) != b.At || a.Write != b.Write || a.LBA != b.LBA || a.Sectors != b.Sectors {
			t.Fatalf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		// wantErr is a substring the error must contain; the line number of
		// the offending line must appear too.
		wantErr string
		line    string
	}{
		{"free text", "not a trace", "fields", "line 1"},
		{"bad op", "100 X 5 1", `bad op "X"`, "line 1"},
		{"lowercase op", "100 w 5 1", `bad op "w"`, "line 1"},
		{"negative time", "-5 W 5 1", "negative issue time", "line 1"},
		{"negative lba", "100 W -1 1", "negative LBA", "line 1"},
		{"zero sectors", "100 W 5 0", "sector count 0", "line 1"},
		{"negative sectors", "100 W 5 -3", "sector count -3", "line 1"},
		{"missing field", "100 W 5", "3 fields", "line 1"},
		{"trailing garbage", "100 W 5 1 extra", "5 fields", "line 1"},
		{"non-numeric time", "soon W 5 1", "bad issue time", "line 1"},
		{"non-numeric lba", "100 W five 1", "bad LBA", "line 1"},
		{"non-numeric sectors", "100 W 5 one", "bad sector count", "line 1"},
		{"time goes backwards", "100 W 5 1\n90 R 5 1", "before previous op", "line 2"},
		{"error after comments", "# header\n\n100 W 5 1\n100 W 5 1 junk", "5 fields", "line 4"},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.trace))
		if err == nil {
			t.Errorf("%s: accepted %q", c.name, c.trace)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) || !strings.Contains(err.Error(), c.line) {
			t.Errorf("%s: error %q, want it to mention %q and %q", c.name, err, c.wantErr, c.line)
		}
	}
	// Comments, blanks, repeated timestamps, and extra spacing are fine.
	ok := "# comment\n\n100 W 5 1\n100 R  7   2\n"
	tr, err := ParseTrace(strings.NewReader(ok))
	if err != nil || len(tr.Ops) != 2 {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// FuzzParseTrace checks that any parsed trace survives a serialize/reparse
// round trip unchanged, and that the parser never panics on arbitrary input.
func FuzzParseTrace(f *testing.F) {
	f.Add("100 W 5 1\n200 R 7 2\n")
	f.Add("# comment\n\n0 W 0 1\n")
	f.Add("100 W 5 1 extra\n")
	f.Add("-5 W 5 1\n")
	f.Add("100 W 5\n90 R 5 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("serializing parsed trace: %v", err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("reparsing serialized trace: %v\n%s", err, buf.Bytes())
		}
		if len(back.Ops) != len(tr.Ops) {
			t.Fatalf("round trip: %d ops != %d", len(back.Ops), len(tr.Ops))
		}
		for i := range tr.Ops {
			if tr.Ops[i] != back.Ops[i] {
				t.Fatalf("round trip op %d: %+v != %+v", i, tr.Ops[i], back.Ops[i])
			}
		}
	})
}

func TestReplayAgainstBaseline(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	tr := SynthesizeTrace(30, UniformPattern{}, 0.5, 4, 5*time.Millisecond, dev.Sectors(), 11)
	res, err := Replay(env, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads.Count()+res.Writes.Count() != 30 {
		t.Errorf("replayed %d+%d of 30", res.Reads.Count(), res.Writes.Count())
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestReplayOpenLoopTiming(t *testing.T) {
	// With huge gaps, each op is issued on schedule (no lag); elapsed
	// tracks the trace length, not the device speed.
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	// Fixed 200 ms spacing (SynthesizeTrace's exponential gaps can dip
	// below the device service time and legitimately lag).
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		tr.Ops = append(tr.Ops, TraceOp{
			At: time.Duration(i) * 200 * time.Millisecond, Write: true, LBA: int64(i * 100), Sectors: 1,
		})
	}
	res, err := Replay(env, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lagged != 0 {
		t.Errorf("lagged = %d with 200ms gaps", res.Lagged)
	}
	if res.Elapsed < tr.Ops[len(tr.Ops)-1].At {
		t.Error("elapsed shorter than the trace span")
	}
}
