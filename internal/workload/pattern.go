package workload

import (
	"fmt"
	"math"

	"tracklog/internal/sim"
)

// Pattern selects write targets for a workload. Patterns must be
// deterministic functions of their generator.
type Pattern interface {
	// Next returns the next target LBA for a request of `sectors`
	// sectors on a device of devSectors capacity. The result must be
	// sector-aligned to the request size.
	Next(rng *sim.Rand, devSectors int64, sectors int) int64
	fmt.Stringer
}

// UniformPattern spreads writes uniformly over the device — the paper's
// "random target locations" (§5.1).
type UniformPattern struct{}

// Next implements Pattern.
func (UniformPattern) Next(rng *sim.Rand, devSectors int64, sectors int) int64 {
	return alignedTarget(rng, devSectors, sectors)
}

func (UniformPattern) String() string { return "uniform" }

// SequentialPattern appends, wrapping at the device end — the access shape
// of a log file.
type SequentialPattern struct {
	next int64
}

// Next implements Pattern.
func (s *SequentialPattern) Next(_ *sim.Rand, devSectors int64, sectors int) int64 {
	lba := s.next
	if lba+int64(sectors) > devSectors {
		lba = 0
	}
	s.next = lba + int64(sectors)
	return lba
}

func (s *SequentialPattern) String() string { return "sequential" }

// ZipfPattern skews writes toward low-numbered slots with a Zipf(s)
// distribution over n slots — a hot/cold working set, the common database
// page-access shape. It uses inverse-CDF sampling over a precomputed table.
type ZipfPattern struct {
	cdf  []float64
	name string
}

// NewZipf builds a Zipf pattern over n slots with exponent s (s ~ 0.99 is
// the classic choice).
func NewZipf(n int, s float64) *ZipfPattern {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfPattern{cdf: cdf, name: fmt.Sprintf("zipf(%d,%.2f)", n, s)}
}

// Next implements Pattern.
func (z *ZipfPattern) Next(rng *sim.Rand, devSectors int64, sectors int) int64 {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	slots := devSectors / int64(sectors)
	slot := int64(lo) % slots
	return slot * int64(sectors)
}

func (z *ZipfPattern) String() string { return z.name }
