package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sim"
)

// TraceOp is one record of an I/O trace: issue a request `At` after trace
// start, at LBA for Sectors sectors.
type TraceOp struct {
	At      time.Duration
	Write   bool
	LBA     int64
	Sectors int
}

// Trace is an ordered sequence of I/O operations, replayable against any
// block device. Traces serialize to a simple text format, one op per line:
//
//	<at_us> <R|W> <lba> <sectors>
type Trace struct {
	Ops []TraceOp
}

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, op := range t.Ops {
		kind := "R"
		if op.Write {
			kind = "W"
		}
		m, err := fmt.Fprintf(w, "%d %s %d %d\n", op.At.Microseconds(), kind, op.LBA, op.Sectors)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ParseTrace reads the text format produced by WriteTo. It is strict: every
// non-comment line must be exactly four fields, values must be in range, and
// issue times must be non-decreasing. Errors carry the offending line number.
func ParseTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	lastAt := int64(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields, want 4 (<at_us> <R|W> <lba> <sectors>)", line, len(fields))
		}
		atUS, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad issue time %q: %w", line, fields[0], err)
		}
		if atUS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative issue time %d", line, atUS)
		}
		if atUS < lastAt {
			return nil, fmt.Errorf("workload: trace line %d: issue time %dus before previous op at %dus", line, atUS, lastAt)
		}
		kind := fields[1]
		if kind != "R" && kind != "W" {
			return nil, fmt.Errorf("workload: trace line %d: bad op %q, want R or W", line, kind)
		}
		lba, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad LBA %q: %w", line, fields[2], err)
		}
		if lba < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative LBA %d", line, lba)
		}
		sectors, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad sector count %q: %w", line, fields[3], err)
		}
		if sectors <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: sector count %d, want > 0", line, sectors)
		}
		lastAt = atUS
		t.Ops = append(t.Ops, TraceOp{
			At:      time.Duration(atUS) * time.Microsecond,
			Write:   kind == "W",
			LBA:     lba,
			Sectors: sectors,
		})
	}
	return t, sc.Err()
}

// SynthesizeTrace builds a trace of n operations with the given pattern,
// write ratio (0..1), request size and mean inter-arrival gap
// (exponentially distributed, a Poisson arrival process).
func SynthesizeTrace(n int, pattern Pattern, writeRatio float64, sectors int, meanGap time.Duration, devSectors int64, seed uint64) *Trace {
	rng := sim.NewRand(seed)
	t := &Trace{Ops: make([]TraceOp, 0, n)}
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.Exp(float64(meanGap)))
		t.Ops = append(t.Ops, TraceOp{
			At:      at,
			Write:   rng.Float64() < writeRatio,
			LBA:     pattern.Next(rng, devSectors, sectors),
			Sectors: sectors,
		})
	}
	return t
}

// ReplayResult reports a trace replay.
type ReplayResult struct {
	Reads, Writes *metrics.Summary
	// Elapsed is the virtual time from the first issue to the last
	// completion.
	Elapsed time.Duration
	// Lagged counts operations that could not be issued at their trace
	// time because the previous operation of the (single-threaded)
	// replayer was still outstanding.
	Lagged int
}

// Replay issues the trace against dev with open-loop timing: each operation
// is issued at its trace offset (or immediately, if the replayer is
// running behind). Run the environment to completion before reading the
// result.
func Replay(env *sim.Env, dev blockdev.Device, t *Trace) (*ReplayResult, error) {
	res := &ReplayResult{Reads: metrics.NewSummary(), Writes: metrics.NewSummary()}
	var failed error
	env.Go("trace-replay", func(p *sim.Proc) {
		start := p.Now()
		for _, op := range t.Ops {
			due := start.Add(op.At)
			if p.Now() < due {
				p.Sleep(due.Sub(p.Now()))
			} else if p.Now() > due {
				res.Lagged++
			}
			opStart := p.Now()
			if op.Write {
				if err := dev.Write(p, op.LBA, op.Sectors, make([]byte, op.Sectors*geom.SectorSize)); err != nil {
					failed = err
					return
				}
				res.Writes.Add(p.Now().Sub(opStart))
			} else {
				if _, err := dev.Read(p, op.LBA, op.Sectors); err != nil {
					failed = err
					return
				}
				res.Reads.Add(p.Now().Sub(opStart))
			}
		}
		res.Elapsed = p.Now().Sub(start)
	})
	env.Run()
	if failed != nil {
		return nil, fmt.Errorf("workload: replay: %w", failed)
	}
	return res, nil
}
