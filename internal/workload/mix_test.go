package workload

import (
	"bytes"
	"testing"
	"time"

	"tracklog/internal/blockdev"
)

func TestGenerateMixDeterministic(t *testing.T) {
	cfg := MixConfig{
		Tenants:           64,
		BlocksPerTenant:   4,
		Requests:          5000,
		ReadFraction:      0.3,
		ZipfS:             0.9,
		BackgroundWeight:  20,
		InteractiveWeight: 10,
		Seed:              42,
	}
	a, err := GenerateMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeMix(a), EncodeMix(b)) {
		t.Fatal("same seed produced different request streams")
	}
	cfg.Seed = 43
	c, err := GenerateMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(EncodeMix(a), EncodeMix(c)) {
		t.Fatal("different seeds produced identical request streams")
	}
}

func TestGenerateMixShape(t *testing.T) {
	cfg := MixConfig{
		Tenants:           32,
		Requests:          20000,
		ReadFraction:      0.25,
		ZipfS:             1.0,
		BackgroundWeight:  30,
		InteractiveWeight: 15,
		Seed:              7,
	}
	reqs, err := GenerateMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != cfg.Requests {
		t.Fatalf("got %d requests, want %d", len(reqs), cfg.Requests)
	}

	var last time.Duration
	perTenant := make([]int, cfg.Tenants)
	perClass := make(map[blockdev.Class]int)
	reads := 0
	for _, r := range reqs {
		if r.At < last {
			t.Fatalf("arrivals not monotone: %v after %v", r.At, last)
		}
		last = r.At
		if r.Tenant < 0 || r.Tenant >= cfg.Tenants {
			t.Fatalf("tenant %d out of range", r.Tenant)
		}
		if r.Block < 0 || r.Block >= 2 { // default BlocksPerTenant
			t.Fatalf("block %d out of range", r.Block)
		}
		perTenant[r.Tenant]++
		perClass[r.Class]++
		if r.Read {
			reads++
		}
	}

	// Zipf s=1: tenant 0 must dominate the median tenant by a wide margin.
	if perTenant[0] < 4*perTenant[cfg.Tenants/2] {
		t.Fatalf("zipf skew missing: tenant0=%d median=%d",
			perTenant[0], perTenant[cfg.Tenants/2])
	}
	// Class weights within loose tolerance (±5pp on 20k samples).
	for class, want := range map[blockdev.Class]int{
		blockdev.ClassBackground:  30,
		blockdev.ClassInteractive: 15,
		blockdev.ClassNormal:      55,
	} {
		got := 100 * perClass[class] / cfg.Requests
		if got < want-5 || got > want+5 {
			t.Errorf("class %v share = %d%%, want ~%d%%", class, got, want)
		}
	}
	if got := 100 * reads / cfg.Requests; got < 20 || got > 30 {
		t.Errorf("read share = %d%%, want ~25%%", got)
	}
}

func TestGenerateMixUniformWhenUnskewed(t *testing.T) {
	reqs, err := GenerateMix(MixConfig{Tenants: 8, Requests: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	perTenant := make([]int, 8)
	for _, r := range reqs {
		perTenant[r.Tenant]++
		if r.Read {
			t.Fatal("default mix should be write-only")
		}
		if r.Class != blockdev.ClassNormal {
			t.Fatalf("default mix should be all-Normal, got %v", r.Class)
		}
	}
	for i, n := range perTenant {
		if n < 700 || n > 1300 {
			t.Fatalf("tenant %d got %d of 8000 requests, want ~1000", i, n)
		}
	}
}

func TestGenerateMixRejectsBadConfig(t *testing.T) {
	bad := []MixConfig{
		{Tenants: 0},
		{Tenants: 1, Requests: -1},
		{Tenants: 1, ReadFraction: 1.5},
		{Tenants: 1, BackgroundWeight: 80, InteractiveWeight: 30},
		{Tenants: 1, BackgroundWeight: -1},
	}
	for _, cfg := range bad {
		if _, err := GenerateMix(cfg); err == nil {
			t.Errorf("GenerateMix(%+v) accepted bad config", cfg)
		}
	}
}
