// Package workload implements the synchronous-write microbenchmark loads of
// the paper's §5.1: user-level processes issuing random-target synchronous
// writes against a block device, in sparse or clustered mode, at a given
// multiprogramming level.
package workload

import (
	"fmt"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sim"
)

// Mode selects the request arrival pattern of §5.1.
type Mode int

const (
	// Clustered issues each request immediately after the previous one
	// completes.
	Clustered Mode = iota + 1
	// Sparse waits Gap after each completion before issuing the next
	// request; the gap exceeds Trail's repositioning overhead, so track
	// switches are masked.
	Sparse
)

func (m Mode) String() string {
	switch m {
	case Clustered:
		return "clustered"
	case Sparse:
		return "sparse"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SyncWriteConfig describes one §5.1 run.
type SyncWriteConfig struct {
	// Mode is sparse or clustered.
	Mode Mode
	// Gap is the sparse-mode inter-request delay (default 5 ms, "larger
	// than the repositioning overhead ... typical value is 1.5 msec").
	Gap time.Duration
	// WriteSize is the size of each synchronous write in bytes (must be a
	// sector multiple).
	WriteSize int
	// Processes is the multiprogramming level (Fig 3: 1 and 5).
	Processes int
	// WritesPerProcess is the number of writes each process issues.
	WritesPerProcess int
	// Seed feeds the random target generator.
	Seed uint64
}

func (c SyncWriteConfig) withDefaults() SyncWriteConfig {
	if c.Gap == 0 {
		c.Gap = 5 * time.Millisecond
	}
	if c.WriteSize == 0 {
		c.WriteSize = 1024
	}
	if c.Processes == 0 {
		c.Processes = 1
	}
	if c.WritesPerProcess == 0 {
		c.WritesPerProcess = 100
	}
	return c
}

// SyncWriteResult is the outcome of one run.
type SyncWriteResult struct {
	Config  SyncWriteConfig
	Latency *metrics.Summary
	// Elapsed is the wall (virtual) time from first issue to last
	// completion.
	Elapsed time.Duration
}

// RunSyncWrites drives the workload against dev in env and returns latency
// statistics. It spawns Processes writer processes and runs the environment
// to completion; env must be otherwise idle.
func RunSyncWrites(env *sim.Env, dev blockdev.Device, cfg SyncWriteConfig) (*SyncWriteResult, error) {
	cfg = cfg.withDefaults()
	if cfg.WriteSize%geom.SectorSize != 0 {
		return nil, fmt.Errorf("workload: write size %d not sector-aligned", cfg.WriteSize)
	}
	sectors := cfg.WriteSize / geom.SectorSize
	res := &SyncWriteResult{Config: cfg, Latency: metrics.NewSummary()}
	var firstIssue, lastDone sim.Time
	var failed error
	for i := 0; i < cfg.Processes; i++ {
		rng := sim.NewRand(cfg.Seed + uint64(i)*7919)
		env.Go(fmt.Sprintf("writer-%d", i), func(p *sim.Proc) {
			data := make([]byte, cfg.WriteSize)
			for w := 0; w < cfg.WritesPerProcess; w++ {
				lba := alignedTarget(rng, dev.Sectors(), sectors)
				for b := range data {
					data[b] = byte(w + b)
				}
				start := p.Now()
				if firstIssue == 0 {
					firstIssue = start
				}
				if err := dev.Write(p, lba, sectors, data); err != nil {
					failed = err
					return
				}
				res.Latency.Add(p.Now().Sub(start))
				if p.Now() > lastDone {
					lastDone = p.Now()
				}
				if cfg.Mode == Sparse {
					p.Sleep(cfg.Gap)
				}
			}
		})
	}
	env.Run()
	if failed != nil {
		return nil, fmt.Errorf("workload: write failed: %w", failed)
	}
	res.Elapsed = lastDone.Sub(firstIssue)
	return res, nil
}

// alignedTarget picks a random sector-aligned target with room for the
// write.
func alignedTarget(rng *sim.Rand, devSectors int64, sectors int) int64 {
	slots := devSectors / int64(sectors)
	return rng.Int64n(slots) * int64(sectors)
}
