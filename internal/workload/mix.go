package workload

// Multi-tenant request mixes for the sharded cluster. One Mix is a fully
// materialized, deterministic request stream: tenant choice (zipfian skew so
// a few tenants dominate, like real multi-tenant storage), per-request
// service class drawn from configured weights, read/write choice, and
// Poisson arrivals. Generating the whole stream up front — instead of
// sampling inside the serving loop — keeps the workload byte-identical
// across runs regardless of how the cluster reorders completions.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/sim"
)

// MixConfig describes a multi-tenant request stream.
type MixConfig struct {
	// Tenants is the number of simulated tenants (must be > 0).
	Tenants int
	// BlocksPerTenant is each tenant's addressable block count (default 2).
	BlocksPerTenant int
	// Requests is the total number of requests to generate.
	Requests int
	// ReadFraction is the probability a request is a read (default 0; the
	// cluster experiments are write-heavy like the paper's §5.1 loads).
	ReadFraction float64
	// Interarrival is the mean of the exponential arrival gap
	// (default 500µs).
	Interarrival time.Duration
	// ZipfS is the zipfian skew exponent over tenants: 0 = uniform,
	// ~1 = classic heavy skew where tenant 0 dominates.
	ZipfS float64
	// BackgroundWeight and InteractiveWeight are the per-request odds of
	// the non-default classes, in parts per hundred; the remainder is
	// ClassNormal. Both zero means all-Normal traffic.
	BackgroundWeight  int
	InteractiveWeight int
	// Seed feeds the generator's private sim.Rand.
	Seed uint64
}

func (c MixConfig) withDefaults() MixConfig {
	if c.BlocksPerTenant == 0 {
		c.BlocksPerTenant = 2
	}
	if c.Interarrival == 0 {
		c.Interarrival = 500 * time.Microsecond
	}
	return c
}

// MixRequest is one materialized request.
type MixRequest struct {
	// At is the virtual arrival instant.
	At time.Duration
	// Tenant and Block address the target slot.
	Tenant, Block int
	// Read selects read vs write.
	Read bool
	// Class is the request's service class.
	Class blockdev.Class
}

// GenerateMix materializes a deterministic request stream. The same config
// (including seed) always yields the same stream, byte for byte under
// EncodeMix — the cluster CI job leans on this for same-seed comparisons.
func GenerateMix(cfg MixConfig) ([]MixRequest, error) {
	cfg = cfg.withDefaults()
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("workload: mix needs Tenants > 0, got %d", cfg.Tenants)
	}
	if cfg.Requests < 0 {
		return nil, fmt.Errorf("workload: negative Requests %d", cfg.Requests)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("workload: ReadFraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.BackgroundWeight < 0 || cfg.InteractiveWeight < 0 ||
		cfg.BackgroundWeight+cfg.InteractiveWeight > 100 {
		return nil, fmt.Errorf("workload: class weights %d+%d must be >= 0 and sum <= 100",
			cfg.BackgroundWeight, cfg.InteractiveWeight)
	}

	// Precompute the zipfian CDF over tenants once; sampling is then a
	// single uniform draw plus a binary search, with no float accumulation
	// order depending on the request stream.
	cdf := zipfCDF(cfg.Tenants, cfg.ZipfS)

	rng := sim.NewRand(cfg.Seed)
	reqs := make([]MixRequest, 0, cfg.Requests)
	var at time.Duration
	for i := 0; i < cfg.Requests; i++ {
		at += time.Duration(rng.Exp(float64(cfg.Interarrival)))
		r := MixRequest{
			At:     at,
			Tenant: sampleCDF(cdf, rng.Float64()),
			Block:  rng.Intn(cfg.BlocksPerTenant),
			Read:   rng.Float64() < cfg.ReadFraction,
		}
		switch c := rng.Intn(100); {
		case c < cfg.BackgroundWeight:
			r.Class = blockdev.ClassBackground
		case c < cfg.BackgroundWeight+cfg.InteractiveWeight:
			r.Class = blockdev.ClassInteractive
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// EncodeMix serializes a request stream to a fixed little-endian layout.
// Byte equality of two encodings is the determinism contract tested by
// TestGenerateMixDeterministic and byte-compared across CI runs.
func EncodeMix(reqs []MixRequest) []byte {
	buf := make([]byte, 0, len(reqs)*26)
	var w [8]byte
	for _, r := range reqs {
		binary.LittleEndian.PutUint64(w[:], uint64(r.At))
		buf = append(buf, w[:]...)
		binary.LittleEndian.PutUint64(w[:], uint64(r.Tenant))
		buf = append(buf, w[:]...)
		binary.LittleEndian.PutUint64(w[:], uint64(r.Block))
		buf = append(buf, w[:]...)
		var rd byte
		if r.Read {
			rd = 1
		}
		buf = append(buf, rd, byte(r.Class))
	}
	return buf
}

// zipfCDF returns the cumulative distribution over n ranks with exponent s.
// s == 0 degenerates to uniform.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return cdf
}

// sampleCDF returns the first index whose cumulative mass covers u.
func sampleCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
