package workload

import (
	"testing"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/geom"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

func baseline(env *sim.Env) blockdev.Device {
	d := disk.New(env, disk.Params{
		Name:            "base",
		RPM:             6000,
		Geom:            geom.Uniform(200, 2, 60),
		SeekT2T:         time.Millisecond,
		SeekAvg:         6 * time.Millisecond,
		SeekMax:         12 * time.Millisecond,
		HeadSwitch:      500 * time.Microsecond,
		ReadOverhead:    300 * time.Microsecond,
		WriteOverhead:   600 * time.Microsecond,
		WriteSettle:     100 * time.Microsecond,
		WriteTurnaround: time.Millisecond,
	})
	return stddisk.New(env, d, blockdev.DevID{Major: 3}, sched.LOOK)
}

func trailDev(t *testing.T, env *sim.Env) blockdev.Device {
	t.Helper()
	logP := disk.Params{
		Name:            "log",
		RPM:             6000,
		Geom:            geom.Uniform(50, 2, 60),
		SeekT2T:         800 * time.Microsecond,
		SeekAvg:         4 * time.Millisecond,
		SeekMax:         8 * time.Millisecond,
		HeadSwitch:      400 * time.Microsecond,
		ReadOverhead:    200 * time.Microsecond,
		WriteOverhead:   500 * time.Microsecond,
		WriteSettle:     100 * time.Microsecond,
		WriteTurnaround: 600 * time.Microsecond,
	}
	lg := disk.New(env, logP)
	if err := trail.Format(lg); err != nil {
		t.Fatal(err)
	}
	dataP := logP
	dataP.Name = "data"
	dataP.Geom = geom.Uniform(200, 2, 60)
	dd := disk.New(env, dataP)
	drv, err := trail.NewDriver(env, lg, []*disk.Disk{dd}, trail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return drv.Dev(0)
}

func TestSyncWritesBaseline(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	res, err := RunSyncWrites(env, dev, SyncWriteConfig{
		Mode: Clustered, WriteSize: 1024, Processes: 1, WritesPerProcess: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != 50 {
		t.Errorf("samples = %d", res.Latency.Count())
	}
	if res.Latency.Mean() < 2*time.Millisecond {
		t.Errorf("baseline mean %v suspiciously fast", res.Latency.Mean())
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestTrailBeatsBaseline(t *testing.T) {
	envB := sim.NewEnv()
	defer envB.Close()
	base, err := RunSyncWrites(envB, baseline(envB), SyncWriteConfig{
		Mode: Sparse, WriteSize: 1024, WritesPerProcess: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	envT := sim.NewEnv()
	defer envT.Close()
	tr, err := RunSyncWrites(envT, trailDev(t, envT), SyncWriteConfig{
		Mode: Sparse, WriteSize: 1024, WritesPerProcess: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Latency.Mean()*3 > base.Latency.Mean() {
		t.Errorf("trail %v vs baseline %v: expected >=3x win", tr.Latency.Mean(), base.Latency.Mean())
	}
}

func TestSparseVsClusteredOnTrail(t *testing.T) {
	run := func(mode Mode) time.Duration {
		env := sim.NewEnv()
		defer env.Close()
		res, err := RunSyncWrites(env, trailDev(t, env), SyncWriteConfig{
			Mode: mode, WriteSize: 1024, WritesPerProcess: 60, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	sparse, clustered := run(Sparse), run(Clustered)
	// Paper §5.1: clustered writes take longer than sparse on Trail
	// because the track switch and turnaround are visible.
	if clustered <= sparse {
		t.Errorf("clustered %v <= sparse %v, want clustered slower", clustered, sparse)
	}
}

func TestMultipleProcessesQueue(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	dev := baseline(env)
	res, err := RunSyncWrites(env, dev, SyncWriteConfig{
		Mode: Clustered, WriteSize: 1024, Processes: 5, WritesPerProcess: 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != 100 {
		t.Errorf("samples = %d", res.Latency.Count())
	}
	// With five concurrent writers the queueing delay must raise mean
	// latency versus a single writer.
	envS := sim.NewEnv()
	defer envS.Close()
	single, err := RunSyncWrites(envS, baseline(envS), SyncWriteConfig{
		Mode: Clustered, WriteSize: 1024, Processes: 1, WritesPerProcess: 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Mean() <= single.Latency.Mean() {
		t.Errorf("5-process mean %v <= 1-process mean %v", res.Latency.Mean(), single.Latency.Mean())
	}
}

func TestRejectsUnalignedSize(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	if _, err := RunSyncWrites(env, baseline(env), SyncWriteConfig{WriteSize: 1000}); err == nil {
		t.Error("unaligned write size accepted")
	}
}

func TestModeString(t *testing.T) {
	if Sparse.String() != "sparse" || Clustered.String() != "clustered" {
		t.Error("mode strings wrong")
	}
}
