package workload

import (
	"fmt"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sim"
)

// Open-loop load generation: unlike the closed-loop §5.1 workloads (where
// each process waits for its previous write before issuing the next, so the
// device can never be offered more than it serves), an open-loop generator
// issues writes at a fixed arrival rate regardless of completions. Offered
// load above the device's capacity is exactly the overload regime the QoS
// layer exists for, so this runner tolerates per-request errors instead of
// aborting on the first one: sheds and deadline misses are counted, not
// fatal.

// OpenLoopConfig describes one fixed-rate run.
type OpenLoopConfig struct {
	// Interarrival is the fixed virtual-time gap between request issues.
	Interarrival time.Duration
	// Requests is the total number of writes issued.
	Requests int
	// WriteSize is the size of each write in bytes (sector multiple).
	WriteSize int
	// Class tags every request (zero value = ClassNormal).
	Class blockdev.Class
	// Deadline, when nonzero, gives each request an absolute deadline of
	// issue time + Deadline.
	Deadline time.Duration
	// Seed feeds the random target generator.
	Seed uint64
	// OnAck, when non-nil, is called for every acknowledged write with its
	// target, payload, and acknowledgement time — callers use it to audit
	// acknowledged-write survival after the run. The data slice must not be
	// retained mutably by the workload after the call.
	OnAck func(lba int64, sectors int, data []byte, at sim.Time)
}

func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Interarrival <= 0 {
		c.Interarrival = 5 * time.Millisecond
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.WriteSize == 0 {
		c.WriteSize = 1024
	}
	return c
}

// OpenLoopResult is the outcome of one open-loop run. Latency covers only
// acknowledged writes; shed and expired requests complete near-instantly by
// design and would make an overloaded system look fast.
type OpenLoopResult struct {
	Config  OpenLoopConfig
	Latency *metrics.Summary
	// Acked counts successful writes; Shed counts blockdev.ErrOverload
	// outcomes; Expired counts blockdev.ErrDeadlineExceeded; OtherErrors is
	// everything else (media faults, device failure).
	Acked, Shed, Expired, OtherErrors int64
	// Elapsed is first issue to last completion.
	Elapsed time.Duration
}

// RunOpenLoopWrites issues cfg.Requests writes against dev at a fixed
// arrival rate, each in its own process so a slow (or stalled) request never
// delays later arrivals. It runs env to completion; env must be otherwise
// idle apart from the device's own processes.
func RunOpenLoopWrites(env *sim.Env, dev blockdev.Device, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	cfg = cfg.withDefaults()
	if cfg.WriteSize%geom.SectorSize != 0 {
		return nil, fmt.Errorf("workload: write size %d not sector-aligned", cfg.WriteSize)
	}
	sectors := cfg.WriteSize / geom.SectorSize
	res := &OpenLoopResult{Config: cfg, Latency: metrics.NewSummary()}
	rng := sim.NewRand(cfg.Seed)
	var firstIssue, lastDone sim.Time
	env.Go("open-loop-arrivals", func(p *sim.Proc) {
		for i := 0; i < cfg.Requests; i++ {
			lba := alignedTarget(rng, dev.Sectors(), sectors)
			seq := i
			env.Go(fmt.Sprintf("op-%d", seq), func(p *sim.Proc) {
				data := make([]byte, cfg.WriteSize)
				for b := range data {
					data[b] = byte(seq + b)
				}
				opts := blockdev.Options{Class: cfg.Class}
				if cfg.Deadline > 0 {
					opts.Deadline = p.Now().Add(cfg.Deadline)
				}
				start := p.Now()
				if firstIssue == 0 {
					firstIssue = start
				}
				err := blockdev.WriteOpts(p, dev, lba, sectors, data, opts)
				switch {
				case err == nil:
					res.Acked++
					res.Latency.Add(p.Now().Sub(start))
					if cfg.OnAck != nil {
						cfg.OnAck(lba, sectors, data, p.Now())
					}
				case blockdev.IsShed(err):
					res.Shed++
				case blockdev.IsExpired(err):
					res.Expired++
				default:
					res.OtherErrors++
				}
				if p.Now() > lastDone {
					lastDone = p.Now()
				}
			})
			if i < cfg.Requests-1 {
				p.Sleep(cfg.Interarrival)
			}
		}
	})
	env.Run()
	res.Elapsed = lastDone.Sub(firstIssue)
	return res, nil
}
