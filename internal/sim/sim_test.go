package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	var woke Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	end := env.Run()
	if want := Time(5 * time.Millisecond); woke != want {
		t.Errorf("woke at %v, want %v", woke, want)
	}
	if end != woke {
		t.Errorf("Run returned %v, want %v", end, woke)
	}
}

func TestSleepZeroYields(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	env.Run()
	want := []string{"a1", "b1", "a2"}
	for i, s := range want {
		if i >= len(order) || order[i] != s {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []Time {
		env := NewEnv()
		defer env.Close()
		var times []Time
		for i := 0; i < 3; i++ {
			d := time.Duration(i+1) * time.Millisecond
			env.Go("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(d)
					times = append(times, p.Now())
				}
			})
		}
		env.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("got %d and %d wakeups, want 9 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventWakesWaiters(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	ev := NewEvent(env)
	var woken []string
	for _, name := range []string{"w1", "w2"} {
		env.Go(name, func(p *Proc) {
			ev.Wait(p)
			woken = append(woken, p.Name())
		})
	}
	env.Go("trigger", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Trigger()
	})
	env.Run()
	if len(woken) != 2 || woken[0] != "w1" || woken[1] != "w2" {
		t.Errorf("woken = %v, want [w1 w2] in FIFO order", woken)
	}
	if ev.At() != Time(time.Millisecond) {
		t.Errorf("event fired at %v, want 1ms", ev.At())
	}
}

func TestEventWaitAfterTrigger(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	ev := NewEvent(env)
	var ran bool
	env.Go("p", func(p *Proc) {
		ev.Trigger()
		ev.Wait(p) // must not block
		ran = true
	})
	env.Run()
	if !ran {
		t.Error("Wait after Trigger blocked")
	}
}

func TestCondSignalFIFO(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	c := NewCond(env)
	var woken []string
	for _, name := range []string{"a", "b", "c"} {
		env.Go(name, func(p *Proc) {
			c.Wait(p)
			woken = append(woken, p.Name())
		})
	}
	env.Go("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Broadcast()
	})
	env.Run()
	if len(woken) != 3 || woken[0] != "a" {
		t.Errorf("woken = %v, want a first then b,c", woken)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	r := NewResource(env, 1)
	var maxHeld, held int
	for i := 0; i < 4; i++ {
		env.Go("user", func(p *Proc) {
			r.Acquire(p)
			held++
			if held > maxHeld {
				maxHeld = held
			}
			p.Sleep(time.Millisecond)
			held--
			r.Release()
		})
	}
	end := env.Run()
	if maxHeld != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxHeld)
	}
	if want := Time(4 * time.Millisecond); end != want {
		t.Errorf("finished at %v, want %v (serialized)", end, want)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	r := NewResource(env, 2)
	for i := 0; i < 4; i++ {
		env.Go("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	if end := env.Run(); end != Time(2*time.Millisecond) {
		t.Errorf("finished at %v, want 2ms with capacity 2", end)
	}
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	q := NewQueue[int](env)
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			q.Push(i)
		}
	})
	env.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

func TestQueueDrain(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	q := NewQueue[int](env)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if d := q.Drain(3); len(d) != 3 || d[0] != 0 || d[2] != 2 {
		t.Errorf("Drain(3) = %v", d)
	}
	if d := q.Drain(0); len(d) != 2 {
		t.Errorf("Drain(0) = %v, want remaining 2", d)
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining all", q.Len())
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	var wokeLate bool
	env.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		wokeLate = true
	})
	end := env.RunUntil(Time(3 * time.Millisecond))
	if wokeLate {
		t.Error("process past deadline ran")
	}
	if end != Time(3*time.Millisecond) {
		t.Errorf("clock = %v, want deadline 3ms", end)
	}
	env.Run()
	if !wokeLate {
		t.Error("resumed Run did not finish the process")
	}
}

func TestCloseUnwindsParkedProcesses(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	cleaned := false
	env.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		ev.Wait(p) // never triggered
	})
	env.Run()
	env.Close()
	if !cleaned {
		t.Error("deferred cleanup did not run on Close")
	}
}

func TestProcessPanicSurfacesInRun(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	env.Go("boom", func(p *Proc) {
		panic("kaput")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Error("Run did not propagate process panic")
		}
	}()
	env.Run()
}

func TestDoneEvent(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	p1 := env.Go("worker", func(p *Proc) { p.Sleep(2 * time.Millisecond) })
	var sawDone Time
	env.Go("watcher", func(p *Proc) {
		p1.Done().Wait(p)
		sawDone = p.Now()
	})
	env.Run()
	if sawDone != Time(2*time.Millisecond) {
		t.Errorf("watcher saw done at %v, want 2ms", sawDone)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRandIntRangeInclusive(t *testing.T) {
	r := NewRand(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 7)
		if v < 5 || v > 7 {
			t.Fatalf("IntRange(5,7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntRange never produced all of 5..7: %v", seen)
	}
}

func TestNURandBounds(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		v := r.NURand(255, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestRandExpPositiveMean(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 9 || mean > 11 {
		t.Errorf("Exp(10) sample mean = %v, want ~10", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(8)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(3 * time.Millisecond)
	if t0.Sub(Time(time.Millisecond)) != 2*time.Millisecond {
		t.Error("Sub wrong")
	}
	if t0.Duration() != 3*time.Millisecond {
		t.Error("Duration wrong")
	}
}

func TestManyProcessesStress(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	r := NewRand(1)
	total := 0
	for i := 0; i < 200; i++ {
		env.Go("w", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(time.Duration(r.Intn(1000)+1) * time.Microsecond)
				total++
			}
		})
	}
	env.Run()
	if total != 2000 {
		t.Errorf("total = %d, want 2000", total)
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	q := NewQueue[int](env)
	var got []int
	for i := 0; i < 3; i++ {
		env.Go("consumer", func(p *Proc) {
			got = append(got, q.Pop(p))
		})
	}
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			q.Push(i)
		}
	})
	env.Run()
	if len(got) != 3 {
		t.Fatalf("consumed %d of 3", len(got))
	}
	// Consumers are woken FIFO, one per item, so values arrive in order.
	for i, v := range got {
		if v != i+1 {
			t.Errorf("got %v", got)
			break
		}
	}
}

func TestRunUntilRepeatedAndIdempotent(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	env.RunUntil(Time(3 * time.Millisecond))
	if ticks != 3 {
		t.Errorf("ticks = %d at 3ms", ticks)
	}
	// Re-running to the same deadline does nothing.
	env.RunUntil(Time(3 * time.Millisecond))
	if ticks != 3 {
		t.Errorf("ticks = %d after idempotent re-run", ticks)
	}
	env.RunUntil(Time(7 * time.Millisecond))
	if ticks != 7 {
		t.Errorf("ticks = %d at 7ms", ticks)
	}
	env.Run()
	if ticks != 10 {
		t.Errorf("ticks = %d at end", ticks)
	}
}

func TestTriggerIdempotent(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	ev := NewEvent(env)
	woken := 0
	env.Go("w", func(p *Proc) {
		ev.Wait(p)
		woken++
	})
	env.Go("t", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Trigger()
		ev.Trigger() // second trigger is a no-op
	})
	env.Run()
	if woken != 1 {
		t.Errorf("woken = %d", woken)
	}
	if !ev.Fired() || ev.At() != Time(time.Millisecond) {
		t.Errorf("event state: fired=%v at=%v", ev.Fired(), ev.At())
	}
}
