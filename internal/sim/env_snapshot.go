package sim

import (
	"bytes"
	"fmt"
	"sort"

	"tracklog/internal/snapshot"
)

const (
	envSnapKind  = "sim.Env"
	randSnapKind = "sim.Rand"
)

// Snapshot encodes the kernel's scheduler state: clock, sequence counters,
// the pending event queue in (at, seq) order, and the process table in id
// order. Goroutine stacks cannot be serialized, so a kernel is restored by
// deterministic replay — rebuild the world from its builder, run to the same
// probe index — and this snapshot is the fingerprint that proves the replay
// converged: Restore verifies byte equality against the replayed kernel
// rather than adopting state.
func (e *Env) Snapshot() []byte {
	w := snapshot.NewWriter(envSnapKind, 1)
	w.I64(int64(e.now))
	w.I64(e.seq)
	w.I64(e.nextID)
	w.I64(e.probeSeq)
	w.Int(e.liveQueued)

	entries := make([]*queued, len(e.queue))
	copy(entries, e.queue)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].at != entries[j].at {
			return entries[i].at < entries[j].at
		}
		return entries[i].seq < entries[j].seq
	})
	w.U32(uint32(len(entries)))
	for _, q := range entries {
		w.I64(int64(q.at))
		w.I64(q.seq)
		w.I64(q.proc.id)
	}

	ids := make([]int64, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		p := e.procs[id]
		w.I64(p.id)
		w.String(p.name)
		w.U8(uint8(p.state))
		w.Bool(p.daemon)
	}
	return w.Bytes()
}

// Restore verifies that this kernel — rebuilt by deterministic replay — has
// converged to the snapshotted state, byte for byte. A divergence (a source
// of nondeterminism in the replayed world) is reported as ErrMismatch with
// both digests; malformed bytes are ErrCorrupt. On success the kernel is
// already in the snapshotted state and nothing is adopted.
func (e *Env) Restore(data []byte) error {
	r, err := snapshot.NewReader(data, envSnapKind, 1)
	if err != nil {
		return err
	}
	r.I64() // now
	r.I64() // seq
	r.I64() // nextID
	r.I64() // probeSeq
	r.Int() // liveQueued
	nq := r.Len()
	for i := 0; i < nq; i++ {
		r.I64()
		r.I64()
		r.I64()
	}
	np := r.Len()
	for i := 0; i < np; i++ {
		r.I64()
		r.StringVal()
		r.U8()
		r.Bool()
	}
	if err := r.Close(); err != nil {
		return err
	}
	cur := e.Snapshot()
	if !bytes.Equal(cur, data) {
		return fmt.Errorf("%w: replayed kernel digest %016x, snapshot %016x — replay diverged",
			snapshot.ErrMismatch, snapshot.Digest(cur), snapshot.Digest(data))
	}
	return nil
}

// Snapshot encodes the generator state; unlike the kernel, a Rand restores
// by adoption.
func (r *Rand) Snapshot() []byte {
	w := snapshot.NewWriter(randSnapKind, 1)
	w.U64(r.state)
	w.Int(r.nurC)
	return w.Bytes()
}

// Restore adopts a generator state produced by Snapshot.
func (r *Rand) Restore(data []byte) error {
	rd, err := snapshot.NewReader(data, randSnapKind, 1)
	if err != nil {
		return err
	}
	state := rd.U64()
	nurC := rd.Int()
	if err := rd.Close(); err != nil {
		return err
	}
	if state == 0 {
		return fmt.Errorf("%w: zero xorshift state", snapshot.ErrCorrupt)
	}
	r.state = state
	r.nurC = nurC
	return nil
}
