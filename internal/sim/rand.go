package sim

import "math"

// Rand is a deterministic pseudo-random source (xorshift64*). It is small,
// fast, allocation-free, and — unlike math/rand's global source — impossible
// to accidentally reseed from the wall clock, which protects simulation
// reproducibility.
type Rand struct {
	state uint64
	nurC  int // fixed run constant for NURand, derived from the seed
}

// NewRand returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed, nurC: int(seed % 256)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int64n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed sample with the given mean,
// useful for arrival processes.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x
// with a fixed run constant C derived from the generator seed.
func (r *Rand) NURand(a, x, y int) int {
	return (((r.IntRange(0, a) | r.IntRange(x, y)) + r.nurC) % (y - x + 1)) + x
}
