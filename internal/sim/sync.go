package sim

// Event is a one-shot completion signal. Processes that Wait before Trigger
// are resumed (in FIFO order) at the instant of the Trigger; Wait after
// Trigger returns immediately. The zero value is not usable; create events
// with NewEvent.
type Event struct {
	env     *Env
	fired   bool
	at      Time
	waiters []*Proc
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has been triggered.
func (ev *Event) Fired() bool { return ev.fired }

// At returns the virtual time the event fired (zero if it has not).
func (ev *Event) At() Time { return ev.at }

// Trigger fires the event, resuming all waiters at the current instant.
// Triggering an already-fired event is a no-op.
func (ev *Event) Trigger() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.at = ev.env.now
	for _, p := range ev.waiters {
		ev.env.ready(p)
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.park()
}

// Cond is a reusable condition: processes Wait on it and other processes
// Signal (wake one, FIFO) or Broadcast (wake all). Unlike sync.Cond there is
// no associated lock — the simulation is single-threaded, so the usual
// "recheck the predicate in a loop" discipline is all that is needed.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a condition bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Wait parks p until a Signal or Broadcast wakes it. Callers must re-check
// their predicate after waking.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.env.ready(p)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.env.ready(p)
	}
	c.waiters = nil
}

// Waiting returns the number of processes blocked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Resource is a counting semaphore with FIFO admission, used to model
// exclusive hardware (capacity 1 models a disk arm).
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: Resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire blocks p until a unit of the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// The releaser incremented inUse on our behalf before waking us.
}

// Release frees one unit, handing it directly to the longest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle Resource")
	}
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.env.ready(p)
		return // unit passes to p; inUse unchanged
	}
	r.inUse--
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Queue is an unbounded FIFO with blocking Pop, the kernel-level analogue of
// a Go channel. Values are any; callers own the type discipline.
type Queue[T any] struct {
	env   *Env
	items []T
	cond  *Cond
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] {
	return &Queue[T]{env: env, cond: NewCond(env)}
}

// Push appends v and wakes one blocked Pop.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Pop blocks p until an item is available, then removes and returns the
// oldest one.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Items returns a copy of the queued items, oldest first, without removing
// them (used by state snapshots).
func (q *Queue[T]) Items() []T {
	out := make([]T, len(q.items))
	copy(out, q.items)
	return out
}

// Drain removes and returns up to max items (all items if max <= 0).
func (q *Queue[T]) Drain(max int) []T {
	n := len(q.items)
	if max > 0 && max < n {
		n = max
	}
	out := make([]T, n)
	copy(out, q.items[:n])
	for i := 0; i < n; i++ {
		var zero T
		q.items[i] = zero
	}
	q.items = q.items[n:]
	return out
}
