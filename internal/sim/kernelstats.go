package sim

import "tracklog/internal/telemetry"

// Kernel self-observability.
//
// Every experiment in the repository runs on this kernel, so simulator
// throughput is itself a performance surface (see ROADMAP "raw simulator
// speed"). KernelStats counts the kernel's own work — events dispatched,
// heap operations, wakeups, process churn — in plain always-on int64
// fields: the counters are pure functions of the deterministic event
// schedule, so two same-seed runs produce identical KernelStats and the
// values are safe to include in byte-compared artifacts.
//
// The counters are deliberately NOT part of the snapshot codec
// (env_snapshot.go): they are observer state, not simulated state. A
// restored world replays the same schedule and regenerates them, and the
// snapshot byte-compare must not depend on whether an observer was
// attached.
//
// Wall-clock cost (events/sec, ns/event, allocs/event) is measured
// separately by telemetry.WallTimer and never appears here.

// KernelStats is a snapshot of the kernel's own work counters.
type KernelStats struct {
	// EventsDispatched counts queue pops that transferred control to a
	// process (stale entries for finished processes are excluded).
	EventsDispatched int64
	// HeapPushes / HeapPops count raw event-queue heap operations.
	HeapPushes int64
	HeapPops   int64
	// Wakeups counts ready() calls: parked processes resumed by a
	// primitive (event trigger, cond broadcast, resource grant).
	Wakeups int64
	// ProcsSpawned / ProcsFinished count process lifecycle edges;
	// processes unwound by Close are spawned but never finished.
	ProcsSpawned  int64
	ProcsFinished int64
	// ProbeEvents mirrors Env.ProbeCount: durability-edge probes numbered
	// whether or not a hook is attached.
	ProbeEvents int64
	// QueuePeak / ProcsPeak are high-water marks of the event queue and
	// the live process table.
	QueuePeak int
	ProcsPeak int
}

// Delta returns s minus an earlier baseline, for measuring one phase of a
// run (e.g. cmd/simbench subtracting world-construction cost). Peaks are
// carried over unchanged: they are whole-run high-water marks.
func (s KernelStats) Delta(base KernelStats) KernelStats {
	return KernelStats{
		EventsDispatched: s.EventsDispatched - base.EventsDispatched,
		HeapPushes:       s.HeapPushes - base.HeapPushes,
		HeapPops:         s.HeapPops - base.HeapPops,
		Wakeups:          s.Wakeups - base.Wakeups,
		ProcsSpawned:     s.ProcsSpawned - base.ProcsSpawned,
		ProcsFinished:    s.ProcsFinished - base.ProcsFinished,
		ProbeEvents:      s.ProbeEvents - base.ProbeEvents,
		QueuePeak:        s.QueuePeak,
		ProcsPeak:        s.ProcsPeak,
	}
}

// KernelStats returns the kernel's work counters so far.
func (e *Env) KernelStats() KernelStats {
	s := e.kstats
	s.ProbeEvents = e.probeSeq
	return s
}

// SetMetrics registers the kernel's self-observability series on reg and
// attaches the dispatch-depth histogram handle. All series read
// deterministic virtual-time state, so any export of reg is safe for
// two-run byte compares. A nil registry detaches the histogram and
// registers nothing — the instrumented hot path costs one nil check.
func (e *Env) SetMetrics(reg *telemetry.Registry) {
	e.mDispatchDepth = reg.Histogram(
		telemetry.Prefix+"sim_dispatch_queue_depth",
		"Event-queue depth observed at each dispatch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	reg.CounterFunc(telemetry.Prefix+"sim_events_dispatched_total",
		"Queue pops that transferred control to a process.",
		func() int64 { return e.kstats.EventsDispatched })
	reg.CounterFunc(telemetry.Prefix+"sim_heap_pushes_total",
		"Event-queue heap pushes.",
		func() int64 { return e.kstats.HeapPushes })
	reg.CounterFunc(telemetry.Prefix+"sim_heap_pops_total",
		"Event-queue heap pops, including stale entries for finished processes.",
		func() int64 { return e.kstats.HeapPops })
	reg.CounterFunc(telemetry.Prefix+"sim_proc_wakeups_total",
		"Parked processes resumed by a kernel primitive.",
		func() int64 { return e.kstats.Wakeups })
	reg.CounterFunc(telemetry.Prefix+"sim_procs_spawned_total",
		"Processes spawned (Go and GoDaemon).",
		func() int64 { return e.kstats.ProcsSpawned })
	reg.CounterFunc(telemetry.Prefix+"sim_procs_finished_total",
		"Process functions that returned normally.",
		func() int64 { return e.kstats.ProcsFinished })
	reg.CounterFunc(telemetry.Prefix+"sim_probe_events_total",
		"Durability-edge probe events numbered by the kernel.",
		func() int64 { return e.probeSeq })
	reg.GaugeFunc(telemetry.Prefix+"sim_virtual_time_ms",
		"Current virtual time, in milliseconds.",
		func() float64 { return float64(e.now) / 1e6 })
	reg.GaugeFunc(telemetry.Prefix+"sim_event_queue_depth",
		"Current event-queue depth.",
		func() float64 { return float64(e.queue.Len()) })
	reg.GaugeFunc(telemetry.Prefix+"sim_event_queue_peak",
		"Event-queue high-water mark.",
		func() float64 { return float64(e.kstats.QueuePeak) })
	reg.GaugeFunc(telemetry.Prefix+"sim_procs_live",
		"Processes currently spawned and not finished.",
		func() float64 { return float64(len(e.procs)) })
	reg.GaugeFunc(telemetry.Prefix+"sim_procs_peak",
		"Live-process high-water mark.",
		func() float64 { return float64(e.kstats.ProcsPeak) })
}
