package sim

import (
	"testing"
	"time"

	"tracklog/internal/trace"
)

// A daemon process must not keep the simulation alive: Run returns when only
// daemon events remain queued.
func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	env := NewEnv()
	defer env.Close()

	var samples []Time
	env.GoDaemon("sampler", func(p *Proc) {
		for {
			samples = append(samples, p.Now())
			p.Sleep(time.Millisecond)
		}
	})
	env.Go("worker", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
	})

	end := env.Run()
	if end != Time(10*time.Millisecond) {
		t.Fatalf("Run ended at %v, want 10ms (daemon kept the clock going?)", end)
	}
	// The sampler ran at 0, 1ms, ..., 10ms alongside the worker.
	if len(samples) < 10 {
		t.Fatalf("daemon sampled %d times, want >= 10", len(samples))
	}
	for i, s := range samples {
		if s != Time(i)*Time(time.Millisecond) {
			t.Fatalf("sample %d at %v, want %v", i, s, Time(i)*Time(time.Millisecond))
		}
	}
}

// With no non-daemon work at all, Run must return immediately at time zero.
func TestDaemonOnlyRunReturnsImmediately(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	env.GoDaemon("idle", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	if end := env.Run(); end != 0 {
		t.Fatalf("daemon-only Run ended at %v, want 0", end)
	}
}

// Attaching a tracer must not change virtual-time behaviour: same program,
// same timestamps, with and without a tracer.
func TestTracerDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(tr *trace.Tracer) []Time {
		env := NewEnv()
		defer env.Close()
		env.SetTracer(tr)
		var stamps []Time
		ev := NewEvent(env)
		env.Go("a", func(p *Proc) {
			p.Sleep(3 * time.Millisecond)
			stamps = append(stamps, p.Now())
			ev.Trigger()
		})
		env.Go("b", func(p *Proc) {
			ev.Wait(p)
			p.Sleep(time.Millisecond)
			stamps = append(stamps, p.Now())
		})
		env.Run()
		return stamps
	}

	plain := run(nil)
	traced := run(trace.New(0))
	if len(plain) != len(traced) {
		t.Fatalf("different event counts: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("stamp %d: %v untraced vs %v traced", i, plain[i], traced[i])
		}
	}
}

// The kernel emits process lifecycle events into an attached tracer.
func TestKernelEmitsLifecycleEvents(t *testing.T) {
	tr := trace.New(0)
	env := NewEnv()
	defer env.Close()
	env.SetTracer(tr)
	env.Go("p1", func(p *Proc) { p.Sleep(time.Millisecond) })
	env.Run()

	var start, end bool
	for _, ev := range tr.Events() {
		if ev.Track != "p1" {
			continue
		}
		switch ev.Kind {
		case trace.KProcStart:
			start = true
		case trace.KProcEnd:
			end = true
			if ev.At != int64(time.Millisecond) {
				t.Fatalf("proc-end at %d, want 1ms", ev.At)
			}
		}
	}
	if !start || !end {
		t.Fatalf("lifecycle events missing: start=%v end=%v", start, end)
	}
}
