package sim

import (
	"strings"
	"testing"
	"time"

	"tracklog/internal/telemetry"
)

// workload is a small deterministic mix of sleeps, events, and process
// churn that exercises every kernel counter.
func kernelWorkload(env *Env) {
	done := NewEvent(env)
	for i := 0; i < 4; i++ {
		i := i
		env.Go("worker", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(time.Duration(i+1) * time.Millisecond)
			}
			if i == 3 {
				done.Trigger()
			} else {
				done.Wait(p)
			}
		})
	}
	env.Run()
}

func TestKernelStatsDeterministic(t *testing.T) {
	run := func() KernelStats {
		env := NewEnv()
		defer env.Close()
		kernelWorkload(env)
		return env.KernelStats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed kernel stats differ:\n%+v\n%+v", a, b)
	}
	if a.EventsDispatched == 0 || a.HeapPushes == 0 || a.HeapPops == 0 || a.Wakeups == 0 {
		t.Errorf("counters not exercised: %+v", a)
	}
	if a.ProcsSpawned != 4 || a.ProcsFinished != 4 {
		t.Errorf("proc lifecycle counts = %d/%d, want 4/4", a.ProcsSpawned, a.ProcsFinished)
	}
	if a.QueuePeak <= 0 || a.ProcsPeak != 4 {
		t.Errorf("peaks = %d/%d", a.QueuePeak, a.ProcsPeak)
	}
}

func TestKernelStatsDelta(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	kernelWorkload(env)
	base := env.KernelStats()
	kernelWorkload(env)
	d := env.KernelStats().Delta(base)
	if d.EventsDispatched <= 0 || d.EventsDispatched >= base.EventsDispatched*2 {
		t.Errorf("delta dispatched = %d (base %d)", d.EventsDispatched, base.EventsDispatched)
	}
	if d.ProcsSpawned != 4 {
		t.Errorf("delta spawned = %d, want 4", d.ProcsSpawned)
	}
	// Peaks are whole-run high-water marks, carried over unchanged.
	if d.ProcsPeak != env.KernelStats().ProcsPeak {
		t.Errorf("delta peak = %d, want carried %d", d.ProcsPeak, env.KernelStats().ProcsPeak)
	}
}

// The metrics export must be byte-identical across same-seed runs: the
// registry holds only virtual-time state.
func TestSetMetricsExportDeterministic(t *testing.T) {
	export := func() string {
		env := NewEnv()
		defer env.Close()
		reg := telemetry.NewRegistry()
		env.SetMetrics(reg)
		kernelWorkload(env)
		var sb strings.Builder
		if err := reg.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := export(), export()
	if a != b {
		t.Errorf("same-seed exports differ:\n%s\nvs\n%s", a, b)
	}
	vals, err := telemetry.ParseProm(strings.NewReader(a))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if vals["tracklog_sim_events_dispatched_total"] <= 0 {
		t.Error("dispatched counter missing or zero in export")
	}
	if vals["tracklog_sim_procs_spawned_total"] != 4 {
		t.Errorf("spawned = %v, want 4", vals["tracklog_sim_procs_spawned_total"])
	}
	if vals["tracklog_sim_dispatch_queue_depth_count"] != vals["tracklog_sim_events_dispatched_total"] {
		t.Errorf("dispatch-depth histogram count %v != dispatched %v",
			vals["tracklog_sim_dispatch_queue_depth_count"], vals["tracklog_sim_events_dispatched_total"])
	}
}

// Attaching metrics must not perturb the simulation, and a nil registry
// must be a no-op: the observed and unobserved worlds stay bit-identical in
// virtual time.
func TestSetMetricsDoesNotPerturbSimulation(t *testing.T) {
	run := func(wire func(*Env)) (Time, KernelStats) {
		env := NewEnv()
		defer env.Close()
		wire(env)
		kernelWorkload(env)
		return env.Now(), env.KernelStats()
	}
	plainT, plainKS := run(func(*Env) {})
	nilT, nilKS := run(func(env *Env) { env.SetMetrics(nil) })
	regT, regKS := run(func(env *Env) { env.SetMetrics(telemetry.NewRegistry()) })
	if plainT != nilT || plainT != regT {
		t.Errorf("final times diverge: plain=%v nil=%v reg=%v", plainT, nilT, regT)
	}
	if plainKS != nilKS || plainKS != regKS {
		t.Errorf("kernel stats diverge:\nplain %+v\nnil   %+v\nreg   %+v", plainKS, nilKS, regKS)
	}
}
