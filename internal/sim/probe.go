package sim

// Probe events are the kernel's "interesting event" stream for crash
// exploration: each point at which a driver acknowledges a client write,
// persists a sector, or crosses a write-back flight boundary emits one probe
// with a monotonically increasing index. The index is counted whether or not
// a hook is attached, so event N in a hooked run is the same instant as event
// N in an unhooked run — the property the crash explorer's bisection relies
// on.
//
// A hook may pause the world at a probe by returning true. Pausing parks the
// emitting process *in place*, without scheduling any event: the next
// RunUntil resumes that process first, before popping the queue, so a
// paused-and-resumed run pops events in exactly the order of a never-paused
// run and stays byte-identical to it.

// ProbeKind classifies an interesting event.
type ProbeKind uint8

const (
	// ProbeAck fires when a driver acknowledges a client write as durable.
	ProbeAck ProbeKind = iota + 1
	// ProbeMediaWrite fires after one sector's contents reach the platter.
	ProbeMediaWrite
	// ProbeWBStart fires when a write-back flight is submitted to a data
	// disk's scheduler.
	ProbeWBStart
	// ProbeWBEnd fires when a write-back flight completes and its log
	// records are credited.
	ProbeWBEnd
	// ProbeCommit fires when a WAL flush becomes durable.
	ProbeCommit
)

// String names the kind for reports.
func (k ProbeKind) String() string {
	switch k {
	case ProbeAck:
		return "ack"
	case ProbeMediaWrite:
		return "media-write"
	case ProbeWBStart:
		return "wb-start"
	case ProbeWBEnd:
		return "wb-end"
	case ProbeCommit:
		return "commit"
	default:
		return "unknown"
	}
}

// ProbeEvent describes one interesting event.
type ProbeEvent struct {
	// Index is the 0-based position of the event in the run's probe stream.
	Index int64
	Kind  ProbeKind
	At    Time
	// Dev names the emitting component (disk name, device, driver).
	Dev string
	// LBA and Count locate the I/O the event belongs to, where meaningful.
	LBA   int64
	Count int
}

// ProbeHook observes probe events; returning true pauses the world at the
// event (see Env.RunUntil). Hooks must not touch the clock or the queue.
type ProbeHook func(ev ProbeEvent) (pause bool)

// SetProbeHook attaches (or with nil, detaches) the probe hook.
func (e *Env) SetProbeHook(h ProbeHook) { e.probeHook = h }

// ProbeCount returns the number of probe events emitted so far. It counts
// whether or not a hook is attached.
func (e *Env) ProbeCount() int64 { return e.probeSeq }

// Paused reports whether the world is paused at a probe event; RunUntil
// resumes it.
func (e *Env) Paused() bool { return e.pausedProc != nil }

// EmitProbe records one interesting event from the running process p. The
// probe index advances unconditionally; if a hook is attached and asks to
// pause, p parks in place and RunUntil returns to its caller.
func (e *Env) EmitProbe(p *Proc, kind ProbeKind, dev string, lba int64, count int) {
	idx := e.probeSeq
	e.probeSeq++
	if e.probeHook == nil {
		return
	}
	if e.probeHook(ProbeEvent{Index: idx, Kind: kind, At: e.now, Dev: dev, LBA: lba, Count: count}) {
		p.pauseHere()
	}
}

// pauseHere parks the running process without scheduling a wakeup; the
// kernel resumes it at the head of the next RunUntil.
func (p *Proc) pauseHere() {
	e := p.env
	if e.cur != p {
		panic("sim: probe pause from outside the running process")
	}
	e.pausedProc = p
	p.state = procParked
	e.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{p: p})
	}
	p.state = procRunning
}
