// Package sim implements a deterministic discrete-event simulation kernel
// with a virtual clock and cooperative processes.
//
// Every timing-sensitive component of the Trail reproduction (the rotational
// disk model, the Trail driver, workload generators, the transaction engine)
// runs as a simulated process on this kernel. Exactly one process executes at
// any instant; a process gives up control only by blocking on a kernel
// primitive (Sleep, Event.Wait, Cond.Wait, Resource.Acquire). Runs are
// bit-reproducible: the kernel never reads the wall clock and breaks ties in
// the event queue by insertion sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"tracklog/internal/telemetry"
	"tracklog/internal/timeline"
	"tracklog/internal/trace"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t with millisecond precision, e.g. "12.345ms".
func (t Time) String() string { return time.Duration(t).String() }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	// procReady means the process is scheduled in the event queue.
	procReady procState = iota + 1
	// procRunning means the process is the one currently executing.
	procRunning
	// procParked means the process is blocked on a primitive and is not in
	// the event queue; something must call env.ready(p) to resume it.
	procParked
	// procDone means the process function returned.
	procDone
)

// Proc is a simulated process. All blocking operations are methods on Proc so
// that the kernel always knows which process is yielding.
type Proc struct {
	env    *Env
	name   string
	id     int64
	resume chan struct{}
	state  procState
	killed bool
	// daemon processes (samplers, background observers) do not keep the
	// simulation alive: Run returns once only daemon events remain queued.
	daemon bool
	done   *Event // triggered when the process function returns
}

// killedPanic is the sentinel used to unwind processes on Env.Close.
type killedPanic struct{ p *Proc }

// Env is a simulation environment: a virtual clock plus the event queue.
// Create one with NewEnv; it is not safe for concurrent use (the whole point
// is that nothing in a simulation is concurrent in real time).
type Env struct {
	now    Time
	seq    int64
	queue  eventQueue
	parked chan struct{} // handshake: running proc -> kernel
	//lint:allow snapshotguard cur is the running process; nil between events, where every snapshot is taken
	cur    *Proc
	procs  map[int64]*Proc
	nextID int64
	//lint:allow snapshotguard closed guards host-side reuse of this Env value; a closed kernel cannot be snapshotted at all
	closed bool
	// liveQueued counts queued events belonging to non-daemon processes;
	// when it reaches zero the simulation has nothing left to do but
	// housekeeping and Run returns.
	liveQueued int

	// probeSeq numbers interesting events (see probe.go); it advances
	// whether or not a hook is attached, so probe indices are identical in
	// hooked and unhooked runs.
	probeSeq  int64
	probeHook ProbeHook
	// pausedProc, when non-nil, is a process parked in place by a probe
	// hook; RunUntil resumes it before popping the queue, which keeps a
	// paused-and-resumed run byte-identical to a never-paused one.
	//lint:allow snapshotguard pausedProc is nil outside a probe-hook pause; snapshots are taken from the hook, where the pause is the caller's own frame
	pausedProc *Proc

	// tracer, when non-nil, observes process scheduling (see SetTracer).
	// Hooks never touch the clock or the queue, so a traced run is
	// bit-identical in virtual time to an untraced one.
	tracer *trace.Tracer

	// kstats counts the kernel's own work (see kernelstats.go). Always on:
	// the counters are deterministic functions of the event schedule.
	// mDispatchDepth, when non-nil, receives the queue depth at each
	// dispatch (attached via SetMetrics).
	//lint:allow snapshotguard kstats is host-side self-observability, deliberately outside the replay fingerprint (restore is verify-by-byte-compare)
	kstats         KernelStats
	mDispatchDepth *telemetry.Histogram
	// tlDispatch, when non-nil, counts dispatched events per virtual-time
	// bucket (attached via SetTimeline).
	tlDispatch *timeline.Mark

	// kernelPanic holds a panic propagated from a process goroutine; Run
	// re-panics with it on the caller's goroutine so failures surface in
	// the test or tool that drives the simulation.
	kernelPanic error
}

// NewEnv returns an empty environment with the clock at 0.
func NewEnv() *Env {
	return &Env{
		parked: make(chan struct{}),
		procs:  make(map[int64]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetTracer attaches (or with nil, detaches) an event tracer. The kernel
// emits process schedule/block events; tracing is purely observational and
// never changes virtual-time behaviour.
func (e *Env) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// SetTimeline attaches the kernel's own dispatch activity to a
// utilization-timeline aggregator: events dispatched per virtual-time bucket
// under ("sim", "kernel"). A nil aggregator disables it; observation never
// changes virtual-time behaviour.
func (e *Env) SetTimeline(a *timeline.Aggregator) {
	e.tlDispatch = a.Mark("sim", "kernel", "events_dispatched")
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (e *Env) Tracer() *trace.Tracer { return e.tracer }

// Go spawns a new simulated process named name. The process starts when the
// kernel next reaches the current virtual time in its queue (i.e. after the
// spawning process yields). It returns the Proc, whose Done event can be
// waited on.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon spawns a daemon process: a background observer (telemetry
// sampler, watchdog) that must not keep the simulation alive. Run returns
// as soon as every event left in the queue belongs to a daemon.
func (e *Env) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	if e.closed {
		panic("sim: Go on closed Env")
	}
	e.nextID++
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.nextID,
		resume: make(chan struct{}),
		state:  procReady,
		daemon: daemon,
	}
	p.done = NewEvent(e)
	e.procs[p.id] = p
	e.kstats.ProcsSpawned++
	if n := len(e.procs); n > e.kstats.ProcsPeak {
		e.kstats.ProcsPeak = n
	}
	if e.tracer != nil {
		e.tracer.Emit(trace.Event{At: int64(e.now), Kind: trace.KProcStart, Track: name})
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if kp, ok := r.(killedPanic); ok && kp.p == p {
					// Unwound by Env.Close: hand control back silently.
					p.state = procDone
					delete(e.procs, p.id)
					e.parked <- struct{}{}
					return
				}
				// Re-panicking here would crash the whole program from a
				// bare goroutine with a confusing trace. Surface the panic
				// on the kernel side instead.
				p.state = procDone
				delete(e.procs, p.id)
				e.kernelPanic = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				e.parked <- struct{}{}
				return
			}
		}()
		fn(p)
		p.state = procDone
		delete(e.procs, p.id)
		e.kstats.ProcsFinished++
		if e.tracer != nil {
			e.tracer.Emit(trace.Event{At: int64(e.now), Kind: trace.KProcEnd, Track: p.name})
		}
		p.done.Trigger()
		e.parked <- struct{}{}
	}()
	e.schedule(e.now, p)
	return p
}

// schedule puts p into the event queue at time t.
func (e *Env) schedule(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &queued{at: t, seq: e.seq, proc: p})
	e.kstats.HeapPushes++
	if n := e.queue.Len(); n > e.kstats.QueuePeak {
		e.kstats.QueuePeak = n
	}
	p.state = procReady
	if !p.daemon {
		e.liveQueued++
	}
}

// ready resumes a parked process at the current time (FIFO among same-time
// wakeups).
func (e *Env) ready(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: ready on process %q in state %d", p.name, p.state))
	}
	e.kstats.Wakeups++
	if e.tracer != nil {
		e.tracer.Emit(trace.Event{At: int64(e.now), Kind: trace.KSched, Track: p.name})
	}
	e.schedule(e.now, p)
}

// Run drives the simulation until the event queue is empty or until no event
// is earlier than the optional deadline (use RunUntil for a deadline). It
// returns the final virtual time. Processes still blocked on primitives when
// the queue drains are left parked; call Close to unwind them.
func (e *Env) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil drives the simulation until the event queue is empty (daemon
// processes excluded — a periodic sampler alone does not keep the clock
// advancing) or the next event would be after deadline. The clock never
// passes deadline.
func (e *Env) RunUntil(deadline Time) Time {
	if e.closed {
		panic("sim: RunUntil on closed Env")
	}
	// A process paused at a probe resumes first, ahead of every queued
	// event: pausing queued nothing, so the pop order from here on matches a
	// never-paused run exactly.
	if p := e.pausedProc; p != nil {
		e.pausedProc = nil
		e.step(p)
		if e.kernelPanic != nil {
			kp := e.kernelPanic
			e.kernelPanic = nil
			panic(kp)
		}
		if e.pausedProc != nil {
			return e.now
		}
	}
	for e.queue.Len() > 0 && e.liveQueued > 0 {
		next := e.queue[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.queue)
		e.kstats.HeapPops++
		if !next.proc.daemon {
			e.liveQueued--
		}
		if next.proc.state == procDone {
			continue // process was killed while queued
		}
		e.now = next.at
		e.kstats.EventsDispatched++
		e.mDispatchDepth.Observe(float64(e.queue.Len() + 1))
		e.tlDispatch.Inc(int64(e.now))
		e.step(next.proc)
		if e.kernelPanic != nil {
			p := e.kernelPanic
			e.kernelPanic = nil
			panic(p)
		}
		if e.pausedProc != nil {
			return e.now
		}
	}
	return e.now
}

// step transfers control to p and waits for it to park or finish.
func (e *Env) step(p *Proc) {
	prev := e.cur
	e.cur = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-e.parked
	e.cur = prev
}

// Close unwinds every live process so no goroutines are leaked. After Close
// the environment must not be used. It is safe to call from the goroutine
// that called Run (not from inside a simulated process).
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pausedProc = nil // a probe-paused proc is parked; the loop kills it
	for _, p := range e.procs {
		if p.state == procParked || p.state == procReady {
			p.killed = true
			e.step(p)
		}
	}
	e.procs = map[int64]*Proc{}
	e.queue = nil
	e.liveQueued = 0
}

// park blocks the calling process until something calls env.ready(p).
func (p *Proc) park() {
	if p.env.tracer != nil {
		p.env.tracer.Emit(trace.Event{At: int64(p.env.now), Kind: trace.KBlock, Track: p.name})
	}
	p.state = procParked
	p.env.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{p: p})
	}
	p.state = procRunning
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done returns an event triggered when the process function returns.
func (p *Proc) Done() *Event { return p.done }

// Sleep blocks the process for d of virtual time. Non-positive durations
// still yield control (the process re-runs at the same instant, after other
// work queued at that instant).
func (p *Proc) Sleep(d time.Duration) {
	if p.env.cur != p {
		panic("sim: Sleep called from outside the running process")
	}
	at := p.env.now
	if d > 0 {
		at = at.Add(d)
	}
	p.state = procParked
	p.env.schedule(at, p)
	p.env.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{p: p})
	}
	p.state = procRunning
}

// Yield gives other processes scheduled at the current instant a chance to
// run before p continues.
func (p *Proc) Yield() { p.Sleep(0) }

// queued is an entry in the kernel's event queue.
type queued struct {
	at   Time
	seq  int64
	proc *Proc
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*queued

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*queued)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}
