package metrics

import (
	"fmt"
	"sort"
	"strings"

	"tracklog/internal/telemetry"
)

// Counters is a small named-counter set used to export fault, retry, and
// reconstruction telemetry from the storage layers in one uniform shape.
// Iteration and rendering order is sorted by name, so String output is
// deterministic and can be compared byte-for-byte across runs.
//
// The zero value and a nil *Counters are both usable: reads return zeros and
// renders are empty, and mutating a zero value allocates the map lazily.
// Mutating a nil *Counters is a no-op, so optional telemetry can be threaded
// through without nil checks at every increment site.
type Counters struct {
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments the named counter by n (creating it at zero).
func (c *Counters) Add(name string, n int64) {
	if c == nil {
		return
	}
	if c.vals == nil {
		c.vals = make(map[string]int64)
	}
	c.vals[name] += n
}

// Set forces the named counter to v.
func (c *Counters) Set(name string, v int64) {
	if c == nil {
		return
	}
	if c.vals == nil {
		c.vals = make(map[string]int64)
	}
	c.vals[name] = v
}

// Get returns the named counter (zero if never touched).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	return c.vals[name]
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the counters as a plain map, for machine-
// readable export (JSON encoding, test assertions). Mutating the returned
// map does not affect c.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if c == nil {
		return out
	}
	for n, v := range c.vals {
		out[n] = v
	}
	return out
}

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	if c.vals == nil && len(other.vals) > 0 {
		c.vals = make(map[string]int64)
	}
	for n, v := range other.vals {
		c.vals[n] += v
	}
}

// Total sums every counter.
func (c *Counters) Total() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// String renders "name=value" pairs sorted by name.
//
// Deprecated exposition path: the hand-rolled formatting this method used to
// carry now lives in the unified telemetry exposition (Registry.WriteKV).
// String remains as a shim — it registers the counters in a transient
// telemetry.Registry and renders through it, byte-for-byte compatible with
// the historical output — so callers needing new formats should register
// with a telemetry.Registry directly instead of extending this method.
func (c *Counters) String() string {
	reg := telemetry.NewRegistry()
	for _, n := range c.Names() {
		v := c.vals[n]
		reg.CounterFunc(n, "", func() int64 { return v })
	}
	var b strings.Builder
	if err := reg.WriteKV(&b); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		return fmt.Sprintf("counters: %v", err)
	}
	return b.String()
}
