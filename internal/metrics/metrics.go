// Package metrics provides streaming latency statistics for the benchmark
// harness: mean/min/max plus percentile estimates from a log-scaled
// histogram, with no per-sample storage.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// bucketsPerDecade controls histogram resolution: ~5% relative error.
const bucketsPerDecade = 48

// minTracked is the smallest latency resolved exactly (1 microsecond).
const minTracked = time.Microsecond

// Summary accumulates duration samples.
type Summary struct {
	count    int64
	sum      time.Duration
	min, max time.Duration
	buckets  map[int]int64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{buckets: make(map[int]int64)}
}

// Add records one sample.
func (s *Summary) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.sum += d
	s.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	if d < minTracked {
		return 0
	}
	return 1 + int(math.Log10(float64(d)/float64(minTracked))*bucketsPerDecade)
}

// bucketUpper returns the upper bound of a bucket.
func bucketUpper(b int) time.Duration {
	if b == 0 {
		return minTracked
	}
	return time.Duration(float64(minTracked) * math.Pow(10, float64(b)/bucketsPerDecade))
}

// Count returns the number of samples.
func (s *Summary) Count() int64 { return s.count }

// Sum returns the total of all samples.
func (s *Summary) Sum() time.Duration { return s.sum }

// Mean returns the average sample, or 0 with no samples.
func (s *Summary) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Min and Max return the sample extremes (0 with no samples).
func (s *Summary) Min() time.Duration { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() time.Duration { return s.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1), accurate to
// the histogram bucket width (~5%).
func (s *Summary) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := int64(q * float64(s.count))
	// Buckets are sparse; walk them in index order.
	maxB := bucketOf(s.max)
	var cum int64
	for b := 0; b <= maxB; b++ {
		cum += s.buckets[b]
		if cum > target {
			u := bucketUpper(b)
			if u > s.max {
				u = s.max
			}
			if u < s.min {
				u = s.min
			}
			return u
		}
	}
	return s.max
}

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	if other.count == 0 {
		return
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	for b, c := range other.buckets {
		s.buckets[b] += c
	}
}

// String formats the summary for experiment output.
func (s *Summary) String() string {
	if s.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.count, s.Mean().Round(time.Microsecond), s.Quantile(0.5).Round(time.Microsecond),
		s.Quantile(0.95).Round(time.Microsecond), s.min.Round(time.Microsecond), s.max.Round(time.Microsecond))
}
