// Package metrics provides streaming latency statistics for the benchmark
// harness: mean/min/max plus percentile estimates from a log-scaled
// histogram, with no per-sample storage.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// bucketsPerDecade controls histogram resolution. Bucket boundaries grow by
// a factor of 10^(1/48) ≈ 1.0491 per bucket, so a histogram-derived quantile
// overshoots the true order statistic by at most ~4.9% (see Quantile).
const bucketsPerDecade = 48

// minTracked is the smallest latency resolved exactly (1 microsecond).
const minTracked = time.Microsecond

// exactSamples is how many samples a Summary retains verbatim. While the
// sample count is at or below this limit, Quantile returns exact nearest-rank
// order statistics — short benchmark runs report exact p50/p99. Past the
// limit the retained samples are discarded and quantiles fall back to the
// log-bucket histogram estimate.
const exactSamples = 1024

// Summary accumulates duration samples.
type Summary struct {
	count    int64
	sum      time.Duration
	min, max time.Duration
	buckets  map[int]int64
	// samples holds every sample verbatim while count <= exactSamples;
	// nil once the summary has spilled to histogram-only accounting.
	samples []time.Duration
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{buckets: make(map[int]int64)}
}

// Add records one sample.
func (s *Summary) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.sum += d
	s.buckets[bucketOf(d)]++
	if s.count <= exactSamples {
		s.samples = append(s.samples, d)
	} else {
		s.samples = nil
	}
}

func bucketOf(d time.Duration) int {
	if d < minTracked {
		return 0
	}
	return 1 + int(math.Log10(float64(d)/float64(minTracked))*bucketsPerDecade)
}

// bucketUpper returns the upper bound of a bucket.
func bucketUpper(b int) time.Duration {
	if b == 0 {
		return minTracked
	}
	return time.Duration(float64(minTracked) * math.Pow(10, float64(b)/bucketsPerDecade))
}

// Count returns the number of samples.
func (s *Summary) Count() int64 { return s.count }

// Sum returns the total of all samples.
func (s *Summary) Sum() time.Duration { return s.sum }

// Mean returns the average sample, or 0 with no samples.
func (s *Summary) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Min and Max return the sample extremes (0 with no samples).
func (s *Summary) Min() time.Duration { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() time.Duration { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded samples.
//
// While the summary holds at most exactSamples samples, the result is the
// exact nearest-rank order statistic (rank = ceil(q*n)), so short runs —
// including every committed BENCH_trail.json configuration — report exact
// p50/p99. Larger summaries fall back to the log-bucket histogram: the
// result is the upper bound of the bucket containing the target rank,
// clamped to [Min, Max]. Buckets grow by 10^(1/bucketsPerDecade) ≈ 1.0491
// per step, so the estimate never undershoots the true order statistic and
// overshoots it by at most a factor of ~1.049 (≈5% relative error);
// durations below minTracked (1µs) share bucket 0 and resolve only to the
// observed min/max.
func (s *Summary) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	if int64(len(s.samples)) == s.count {
		sorted := make([]time.Duration, len(s.samples))
		copy(sorted, s.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		rank := int(math.Ceil(q * float64(s.count)))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	target := int64(q * float64(s.count))
	// Buckets are sparse; walk them in index order.
	maxB := bucketOf(s.max)
	var cum int64
	for b := 0; b <= maxB; b++ {
		cum += s.buckets[b]
		if cum > target {
			u := bucketUpper(b)
			if u > s.max {
				u = s.max
			}
			if u < s.min {
				u = s.min
			}
			return u
		}
	}
	return s.max
}

// Merge folds other into s. The exact-sample path survives a merge only if
// both sides still hold their full sample sets and the combined count fits
// within exactSamples; otherwise the merged summary is histogram-only.
func (s *Summary) Merge(other *Summary) {
	if other.count == 0 {
		return
	}
	if int64(len(s.samples)) == s.count && int64(len(other.samples)) == other.count &&
		s.count+other.count <= exactSamples {
		s.samples = append(s.samples, other.samples...)
	} else {
		s.samples = nil
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	for b, c := range other.buckets {
		s.buckets[b] += c
	}
}

// String formats the summary for experiment output.
func (s *Summary) String() string {
	if s.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.count, s.Mean().Round(time.Microsecond), s.Quantile(0.5).Round(time.Microsecond),
		s.Quantile(0.95).Round(time.Microsecond), s.min.Round(time.Microsecond), s.max.Round(time.Microsecond))
}
