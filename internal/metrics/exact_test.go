package metrics

import (
	"strings"
	"testing"
	"time"
)

// Below exactSamples the quantiles are exact nearest-rank order statistics,
// not histogram bucket bounds: bench output for short runs must be exact.
func TestQuantileExactSmallSample(t *testing.T) {
	s := NewSummary()
	for i := 100; i >= 1; i-- { // reverse order: exactness must not depend on arrival order
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},   // rank ceil(0.50*100) = 50
		{0.90, 90 * time.Millisecond},   // rank 90
		{0.99, 99 * time.Millisecond},   // rank 99
		{0.999, 100 * time.Millisecond}, // rank ceil(99.9) = 100
		{0.01, 1 * time.Millisecond},    // rank 1
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want exact %v", c.q, got, c.want)
		}
	}
}

func TestQuantileExactAtLimit(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= exactSamples; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	// Still exact at exactly the limit.
	want := time.Duration(exactSamples/2) * time.Microsecond
	if got := s.Quantile(0.5); got != want {
		t.Fatalf("at limit: Quantile(0.5) = %v, want %v", got, want)
	}
	// One more sample spills to histogram-only: still within bounds and ~5%.
	s.Add(time.Duration(exactSamples+1) * time.Microsecond)
	got := s.Quantile(0.5)
	if got < s.Min() || got > s.Max() {
		t.Fatalf("post-spill Quantile(0.5) = %v outside [%v, %v]", got, s.Min(), s.Max())
	}
	true50 := float64((exactSamples + 1) / 2)
	if ratio := float64(got.Microseconds()) / true50; ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("post-spill Quantile(0.5) = %v, true %vµs (ratio %.3f)", got, true50, ratio)
	}
}

func TestMergePreservesExactWhenSmall(t *testing.T) {
	a, b := NewSummary(), NewSummary()
	for i := 1; i <= 10; i++ {
		a.Add(time.Duration(i) * time.Millisecond)
		b.Add(time.Duration(i+10) * time.Millisecond)
	}
	a.Merge(b)
	if got, want := a.Quantile(0.5), 10*time.Millisecond; got != want {
		t.Fatalf("merged Quantile(0.5) = %v, want exact %v", got, want)
	}
	if got, want := a.Quantile(1), 20*time.Millisecond; got != want {
		t.Fatalf("merged Quantile(1) = %v, want %v", got, want)
	}
}

func TestMergeSpillsWhenCombinedTooLarge(t *testing.T) {
	a, b := NewSummary(), NewSummary()
	for i := 0; i < exactSamples/2+1; i++ {
		a.Add(time.Millisecond)
		b.Add(2 * time.Millisecond)
	}
	a.Merge(b)
	// Combined count exceeds the limit: must fall back to histogram without
	// leaving a stale partial sample slice behind.
	if got := a.Quantile(0.5); got < a.Min() || got > a.Max() {
		t.Fatalf("spilled merge Quantile(0.5) = %v outside [%v, %v]", got, a.Min(), a.Max())
	}
	if a.Count() != int64(exactSamples+2) {
		t.Fatalf("merged count = %d", a.Count())
	}
}

// Empty input must render finite axis labels, not "+Inf".
func TestAsciiPlotEmptySeriesLabels(t *testing.T) {
	out := AsciiPlot("empty", "x", "y", nil, 40, 10)
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("empty plot leaks non-finite labels:\n%s", out)
	}
	out = AsciiPlot("empty", "x", "y", []Series{{Name: "s"}}, 40, 10)
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("empty-series plot leaks non-finite labels:\n%s", out)
	}
}

// Degenerate width/height fall back to sane defaults rather than panicking
// on negative strings.Repeat counts.
func TestAsciiPlotTinyDimensions(t *testing.T) {
	pts := []Series{{Name: "s", Points: [][2]float64{{0, 1}, {1, 2}}}}
	for _, wh := range [][2]int{{0, 0}, {5, 2}, {19, 4}, {-3, -3}} {
		out := AsciiPlot("t", "a-very-long-x-label", "a-very-long-y-label", pts, wh[0], wh[1])
		if !strings.Contains(out, "t\n") {
			t.Fatalf("width=%d height=%d: missing title:\n%s", wh[0], wh[1], out)
		}
	}
}
