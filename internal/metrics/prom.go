package metrics

import (
	"fmt"
	"io"

	"tracklog/internal/telemetry"
)

// Prometheus exposition for counter sets, routed through the telemetry
// registry so the whole module shares one text-format implementation
// (name sanitization, escaping, ordering — see internal/telemetry/prom.go).

// WriteProm writes the counter set in Prometheus text exposition format.
// Names follow the module convention: "trail.writes" becomes
// "tracklog_trail_writes_total" (the "_total" suffix is added unless
// already present).
func (c *Counters) WriteProm(w io.Writer) error {
	reg := telemetry.NewRegistry()
	RegisterCounters(reg, func() *Counters { return c })
	return reg.WriteProm(w)
}

// RegisterCounters registers every counter produced by snap as a live
// counter series on reg, under the conventional exported names. snap is
// re-invoked at export time, so series read current values — the
// one-registration bridge from a component's Stats().Counters() snapshot
// style onto the unified registry. The name set is fixed at registration:
// counters that appear in later snapshots are not exported.
func RegisterCounters(reg *telemetry.Registry, snap func() *Counters, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	for _, n := range snap().Names() {
		n := n
		reg.CounterFunc(telemetry.CounterName(n),
			fmt.Sprintf("Value of counter %q.", n),
			func() int64 { return snap().Get(n) }, labels...)
	}
}
