package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySummary(t *testing.T) {
	s := NewSummary()
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty summary not zero")
	}
	if s.String() != "no samples" {
		t.Errorf("String = %q", s.String())
	}
}

func TestBasicStats(t *testing.T) {
	s := NewSummary()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		s.Add(d)
	}
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Mean() != 2*time.Millisecond {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != time.Millisecond || s.Max() != 3*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 6*time.Millisecond {
		t.Errorf("sum = %v", s.Sum())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := float64(s.Quantile(q))
		want := q * 1000 * float64(time.Microsecond)
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("Q(%v) = %v, want ~%v", q, time.Duration(got), time.Duration(want))
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	s := NewSummary()
	s.Add(5 * time.Millisecond)
	s.Add(7 * time.Millisecond)
	f := func(raw uint16) bool {
		q := float64(raw) / 65535.0
		v := s.Quantile(q)
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeClamped(t *testing.T) {
	s := NewSummary()
	s.Add(-time.Second)
	if s.Min() != 0 || s.Max() != 0 {
		t.Error("negative sample not clamped to zero")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSummary(), NewSummary()
	a.Add(time.Millisecond)
	b.Add(3 * time.Millisecond)
	b.Add(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 || a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Errorf("merged: %v", a)
	}
	if a.Mean() != 3*time.Millisecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
	// Merging an empty summary changes nothing.
	before := a.Count()
	a.Merge(NewSummary())
	if a.Count() != before {
		t.Error("empty merge changed count")
	}
}

func TestSubMicrosecondSamples(t *testing.T) {
	s := NewSummary()
	s.Add(100 * time.Nanosecond)
	s.Add(200 * time.Nanosecond)
	if s.Quantile(0.5) > time.Microsecond {
		t.Errorf("sub-microsecond quantile = %v", s.Quantile(0.5))
	}
}

func TestAsciiPlot(t *testing.T) {
	out := AsciiPlot("demo", "x", "y", []Series{
		{Name: "a", Points: [][2]float64{{1, 1}, {2, 4}, {3, 9}}},
		{Name: "b", Points: [][2]float64{{1, 2}, {2, 3}, {3, 5}}},
	}, 40, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Errorf("plot missing elements:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("no marks plotted")
	}
	// Degenerate inputs do not panic.
	_ = AsciiPlot("empty", "x", "y", nil, 0, 0)
	_ = AsciiPlot("single", "x", "y", []Series{{Name: "s", Points: [][2]float64{{5, 5}}}}, 40, 10)
}
