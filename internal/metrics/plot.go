package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a plot.
type Series struct {
	Name string
	// Points are (x, y) pairs; x values should be shared across series for
	// sensible output.
	Points [][2]float64
}

// AsciiPlot renders series as a fixed-size ASCII chart, for figure-like
// terminal output of the paper's graphs. X is linear over the union of
// points; Y is linear from zero (or the minimum, if negative values occur).
func AsciiPlot(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for _, pt := range s.Points {
			minX = math.Min(minX, pt[0])
			maxX = math.Max(maxX, pt[0])
			minY = math.Min(minY, pt[1])
			maxY = math.Max(maxY, pt[1])
		}
	}
	// With no points at all the scan leaves the extents infinite; pin them to
	// a unit range so the axis labels render as numbers, not "+Inf".
	if math.IsInf(minX, 1) {
		minX, maxX = 0, 1
	} else if maxX == minX {
		maxX = minX + 1
	}
	if math.IsInf(maxY, -1) || maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, pt := range s.Points {
			col := int((pt[0] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((pt[1]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.3g +%s\n", maxY, strings.Repeat("-", width))
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		if i == height/2 {
			label = fmt.Sprintf("%10s", ylabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.3g%s%10.3g  (%s)\n", "", minX,
		strings.Repeat(" ", max(0, width-20)), maxX, xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "%12c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
