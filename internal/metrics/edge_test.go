package metrics

import (
	"strings"
	"testing"
	"time"
)

// Percentile edge cases: the experiment harness calls Quantile on summaries
// of every shape, including ones that never saw a sample.
func TestQuantileEmptySummary(t *testing.T) {
	s := NewSummary()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty summary stats: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	if s.String() != "no samples" {
		t.Errorf("empty String = %q", s.String())
	}
}

func TestQuantileSingleSample(t *testing.T) {
	s := NewSummary()
	s.Add(3 * time.Millisecond)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		if got < s.Min() || got > s.Max() {
			t.Errorf("Quantile(%v) = %v outside [min, max] = [%v, %v]", q, got, s.Min(), s.Max())
		}
	}
	if s.Quantile(0) != 3*time.Millisecond || s.Quantile(1) != 3*time.Millisecond {
		t.Errorf("q=0/q=1 should be the single sample, got %v / %v", s.Quantile(0), s.Quantile(1))
	}
}

// Sub-microsecond samples all land in bucket 0 and must not produce
// quantiles outside the observed range.
func TestQuantileSubMicrosecond(t *testing.T) {
	s := NewSummary()
	for _, d := range []time.Duration{10, 200, 999} { // nanoseconds
		s.Add(d)
	}
	if got := s.Quantile(0.5); got < s.Min() || got > s.Max() {
		t.Errorf("sub-µs Quantile(0.5) = %v outside [%v, %v]", got, s.Min(), s.Max())
	}
	if s.Min() != 10 || s.Max() != 999 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Negative samples are clamped to zero rather than corrupting the histogram.
func TestAddNegativeClamps(t *testing.T) {
	s := NewSummary()
	s.Add(-time.Second)
	if s.Min() != 0 || s.Max() != 0 || s.Sum() != 0 {
		t.Errorf("negative sample not clamped: min=%v max=%v sum=%v", s.Min(), s.Max(), s.Sum())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile after clamp = %v, want 0", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * 17 * time.Microsecond)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v -> %v < previous %v", q, got, prev)
		}
		prev = got
	}
}

// Counters must be usable as a zero value and as a nil pointer: optional
// telemetry is threaded through layers that may never initialize it.
func TestCountersZeroValue(t *testing.T) {
	var c Counters
	c.Add("a", 2)
	c.Add("a", 3)
	c.Set("b", 7)
	if c.Get("a") != 5 || c.Get("b") != 7 {
		t.Fatalf("zero-value counters: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Total() != 12 {
		t.Fatalf("Total = %d, want 12", c.Total())
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add("a", 1)
	c.Set("b", 2)
	c.Merge(NewCounters())
	if c.Get("a") != 0 || c.Total() != 0 {
		t.Fatal("nil counters accumulated state")
	}
	if c.Names() != nil {
		t.Fatalf("nil Names = %v", c.Names())
	}
	if got := c.Snapshot(); len(got) != 0 {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if c.String() != "(none)" {
		t.Fatalf("nil String = %q", c.String())
	}
}

func TestCountersZeroValueMerge(t *testing.T) {
	other := NewCounters()
	other.Set("x", 4)
	var c Counters
	c.Merge(other)
	if c.Get("x") != 4 {
		t.Fatalf("merge into zero value: x=%d", c.Get("x"))
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Set("x", 1)
	snap := c.Snapshot()
	snap["x"] = 99
	snap["y"] = 1
	if c.Get("x") != 1 || c.Get("y") != 0 {
		t.Fatal("Snapshot aliases the counter map")
	}
}

// String renders sorted by name so output is comparable across runs.
func TestCountersStringSorted(t *testing.T) {
	c := NewCounters()
	c.Set("zeta", 1)
	c.Set("alpha", 2)
	c.Set("mid", 3)
	if got, want := c.String(), "alpha=2 mid=3 zeta=1"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// AsciiPlot must render identically for identical input: the experiment
// harness diffs plots across runs.
func TestAsciiPlotDeterministic(t *testing.T) {
	series := []Series{
		{Name: "a", Points: [][2]float64{{1, 2}, {2, 4}, {4, 8}}},
		{Name: "b", Points: [][2]float64{{1, 3}, {2, 2}, {4, 1}}},
	}
	first := AsciiPlot("t", "x", "y", series, 40, 10)
	for i := 0; i < 5; i++ {
		if got := AsciiPlot("t", "x", "y", series, 40, 10); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Shape sanity: title, both axis labels, a legend line per series.
	for _, frag := range []string{"t\n", "(x)", "y", "* = a", "o = b"} {
		if !strings.Contains(first, frag) {
			t.Errorf("plot missing %q:\n%s", frag, first)
		}
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	// No points and single-point series must not panic or divide by zero.
	_ = AsciiPlot("empty", "x", "y", nil, 40, 10)
	_ = AsciiPlot("one", "x", "y", []Series{{Name: "s", Points: [][2]float64{{5, 5}}}}, 40, 10)
}
