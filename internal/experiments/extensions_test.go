package experiments

import "testing"

func TestFSMetadataTrailWins(t *testing.T) {
	res, err := FSMetadata(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	std, tr := res.Rows[0], res.Rows[1]
	if std.System != "standard" || tr.System != "trail" {
		t.Fatalf("row order: %+v", res.Rows)
	}
	// Identical I/O counts (same file system logic), very different cost.
	if std.DataWrites != tr.DataWrites || std.MetaWrites != tr.MetaWrites {
		t.Errorf("write counts differ: std %+v vs trail %+v", std, tr)
	}
	if tr.MeanAppend*2 > std.MeanAppend {
		t.Errorf("O_SYNC append: trail %v vs standard %v, want >= 2x win", tr.MeanAppend, std.MeanAppend)
	}
	// Metadata writes exist at all — the point of the comparison.
	if std.MetaWrites == 0 {
		t.Error("no metadata writes recorded")
	}
}

func TestRAID5SmallWritesTrailWins(t *testing.T) {
	res, err := RAID5SmallWrites(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	std, tr := res.Rows[0], res.Rows[1]
	// Same logical I/O pattern.
	if std.SmallWrites != tr.SmallWrites {
		t.Errorf("small write counts differ: %d vs %d", std.SmallWrites, tr.SmallWrites)
	}
	// Each small write = 2 reads + 2 writes at the devices.
	if std.DeviceReads != 2*std.SmallWrites || std.DeviceWrites != 2*std.SmallWrites {
		t.Errorf("small-write I/O pattern wrong: %+v", std)
	}
	if tr.MeanWrite >= std.MeanWrite {
		t.Errorf("RAID-5 small write: trail %v >= standard %v", tr.MeanWrite, std.MeanWrite)
	}
}

func TestDirectLoggingBeatsIndirect(t *testing.T) {
	res, err := DirectLogging(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	direct, indirect := res.Rows[0], res.Rows[1]
	if direct.MeanCommit >= indirect.MeanCommit {
		t.Errorf("direct commit %v >= indirect %v", direct.MeanCommit, indirect.MeanCommit)
	}
	if direct.Flushes != indirect.Flushes {
		t.Errorf("flush counts differ: %d vs %d", direct.Flushes, indirect.Flushes)
	}
}
