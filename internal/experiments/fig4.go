package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/span"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// Fig4Row is one Q point of Figure 4: recovery cost with Q pending write
// records on the log disk at crash time.
type Fig4Row struct {
	// Q is the requested backlog; RecordsFound is what recovery actually
	// reconstructed (>= Q − a few that committed while building up).
	Q            int
	RecordsFound int
	// Locate/Rebuild/WriteBack are the three recovery phases of Fig 4(a).
	Locate, Rebuild, WriteBack time.Duration
	// TotalSkip is the end-to-end time with the write-back phase bypassed
	// (Fig 4(b)).
	TotalSkip time.Duration
	// TracksScanned counts locate-phase track scans (binary search).
	TracksScanned int
	// WBWrites counts the data-disk writes issued during the write-back
	// phase, and WBQueue/WBMech/WBRotWait/WBXfer decompose their summed
	// latency (span-attributed at the standard disk driver; Mech bundles
	// seek, settle, head switch, and command overheads): replay is
	// dominated by mechanical positioning and rotational waits, which is
	// exactly why the paper's skip-write-back optimization pays.
	WBWrites                           int
	WBQueue, WBMech, WBRotWait, WBXfer time.Duration
}

// Total returns the full recovery time.
func (r Fig4Row) Total() time.Duration { return r.Locate + r.Rebuild + r.WriteBack }

// Fig4Result reproduces Figure 4.
type Fig4Result struct {
	Rows []Fig4Row
}

// Figure4 reproduces Figure 4: crash the Trail system with Q pending write
// records, recover, and report the three-phase breakdown (a) plus the
// write-back-skipped total (b), for each Q.
func Figure4(qs []int, seed uint64) (*Fig4Result, error) {
	if len(qs) == 0 {
		qs = []int{32, 64, 128, 256}
	}
	res := &Fig4Result{}
	for _, q := range qs {
		// Two identical crash states: recovery consumes one (it marks the
		// disk clean), so the skip-write-back variant needs its own.
		rec := span.NewRecorder(0)
		full, err := crashWithBacklog(q, seed, trail.RecoverOptions{Spans: rec}, rec)
		if err != nil {
			return nil, err
		}
		skip, err := crashWithBacklog(q, seed, trail.RecoverOptions{SkipWriteBack: true}, nil)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{
			Q:             q,
			RecordsFound:  full.RecordsFound,
			Locate:        full.LocateTime,
			Rebuild:       full.RebuildTime,
			WriteBack:     full.WriteBackTime,
			TotalSkip:     skip.Total(),
			TracksScanned: full.TracksScanned,
		}
		// Decompose the write-back phase from the data-disk spans.
		var queue, mech, rot, xfer int64
		for _, rq := range rec.Requests() {
			if rq.Driver != "std" || rq.Kind != span.KWrite {
				continue
			}
			row.WBWrites++
			queue += rq.PhaseTotal(span.PQueue) + rq.PhaseTotal(span.PRetry)
			mech += rq.PhaseTotal(span.PTurnaround) + rq.PhaseTotal(span.POverhead) +
				rq.PhaseTotal(span.PSeek) + rq.PhaseTotal(span.PHeadSwitch) +
				rq.PhaseTotal(span.PSettle)
			rot += rq.PhaseTotal(span.PRotWait)
			xfer += rq.PhaseTotal(span.PTransfer)
		}
		row.WBQueue = time.Duration(queue)
		row.WBMech = time.Duration(mech)
		row.WBRotWait = time.Duration(rot)
		row.WBXfer = time.Duration(xfer)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// crashWithBacklog builds a Trail system, runs writes until Q records are
// outstanding, cuts power, reboots and recovers with opts. When rec is
// non-nil the rebooted data disks record spans into it, so the write-back
// phase can be decomposed per device command.
func crashWithBacklog(q int, seed uint64, opts trail.RecoverOptions, rec *span.Recorder) (*trail.RecoverReport, error) {
	cfg := DefaultTrailConfig()
	cfg.DisableBatching = true // one record per write: backlog == Q records
	rig, err := newTrailRig(1, cfg)
	if err != nil {
		return nil, err
	}
	dev := rig.drv.Dev(0)
	rng := sim.NewRand(seed + uint64(q))
	stop := false
	rig.env.Go("load", func(p *sim.Proc) {
		for !stop {
			lba := rng.Int64n(dev.Sectors()/8) * 8
			if err := dev.Write(p, lba, 2, make([]byte, 2*geom.SectorSize)); err != nil {
				panic(err)
			}
		}
	})
	// Advance until the backlog reaches Q, then cut power.
	for rig.drv.OutstandingRecords() < q {
		before := rig.env.Now()
		rig.env.RunUntil(before.Add(2 * time.Millisecond))
		if rig.env.Now() == before {
			rig.env.Close()
			return nil, fmt.Errorf("fig4: backlog stalled at %d of %d", rig.drv.OutstandingRecords(), q)
		}
	}
	stop = true
	rig.env.Close()

	// Reboot: fresh environment, same media.
	env := sim.NewEnv()
	defer env.Close()
	rig.log.Reattach(env)
	devs := map[blockdev.DevID]blockdev.Device{}
	for i, dd := range rig.data {
		dd.Reattach(env)
		id := blockdev.DevID{Major: 8, Minor: uint8(i)}
		sd := stddisk.New(env, dd, id, sched.LOOK)
		if rec != nil {
			sd.SetRecorder(rec, fmt.Sprintf("data%d", i))
		}
		devs[id] = sd
	}
	var rep *trail.RecoverReport
	var rerr error
	env.Go("recover", func(p *sim.Proc) {
		rep, rerr = trail.Recover(p, rig.log, devs, opts)
	})
	env.Run()
	if rerr != nil {
		return nil, fmt.Errorf("fig4 recover q=%d: %w", q, rerr)
	}
	return rep, nil
}

// String renders both panels.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: recovery time breakdown (ms)\n")
	fmt.Fprintf(&b, "%6s %8s %10s %10s %10s %10s %10s %8s %7s\n",
		"Q", "records", "locate", "rebuild", "writeback", "total", "no-wb", "tracks", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.TotalSkip > 0 {
			ratio = float64(row.Total()) / float64(row.TotalSkip)
		}
		fmt.Fprintf(&b, "%6d %8d %10s %10s %10s %10s %10s %8d %6.1fx\n",
			row.Q, row.RecordsFound, fmtMS(row.Locate), fmtMS(row.Rebuild), fmtMS(row.WriteBack),
			fmtMS(row.Total()), fmtMS(row.TotalSkip), row.TracksScanned, ratio)
	}
	b.WriteString("(paper: locate ~450 ms binary search; write-back makes recovery ~3.5x slower at Q=256)\n")
	b.WriteString("write-back anatomy (span-attributed data-disk write time, ms)\n")
	fmt.Fprintf(&b, "%6s %8s %10s %10s %10s %10s\n",
		"Q", "writes", "queue", "mech", "rotwait", "xfer")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %8d %10s %10s %10s %10s\n",
			row.Q, row.WBWrites, fmtMS(row.WBQueue), fmtMS(row.WBMech),
			fmtMS(row.WBRotWait), fmtMS(row.WBXfer))
	}
	return b.String()
}

// Plot renders the recovery breakdown as an ASCII chart.
func (r *Fig4Result) Plot() string {
	mk := func(name string, pick func(Fig4Row) time.Duration) metrics.Series {
		s := metrics.Series{Name: name}
		for _, row := range r.Rows {
			s.Points = append(s.Points, [2]float64{float64(row.Q), pick(row).Seconds() * 1000})
		}
		return s
	}
	return metrics.AsciiPlot(
		"Figure 4: recovery time vs pending records",
		"Q (pending records)", "ms",
		[]metrics.Series{
			mk("total", Fig4Row.Total),
			mk("write-back", func(r Fig4Row) time.Duration { return r.WriteBack }),
			mk("locate", func(r Fig4Row) time.Duration { return r.Locate }),
			mk("no write-back", func(r Fig4Row) time.Duration { return r.TotalSkip }),
		}, 64, 16)
}
