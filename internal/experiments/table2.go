package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/tpcc"
	"tracklog/internal/trail"
	"tracklog/internal/txn"
	"tracklog/internal/wal"
)

// StorageSystem is one column of Table 2.
type StorageSystem int

// The three systems under test.
const (
	// Ext2Trail runs Berkeley-DB-style transactions over the Trail driver
	// (every log write synchronous; Trail makes them cheap).
	Ext2Trail StorageSystem = iota + 1
	// Ext2 runs over the standard disk subsystem with a synchronous flush
	// at every commit.
	Ext2
	// Ext2GC runs over the standard disk subsystem with group commit
	// (50 KB log buffer by default).
	Ext2GC
)

func (s StorageSystem) String() string {
	switch s {
	case Ext2Trail:
		return "EXT2+Trail"
	case Ext2:
		return "EXT2"
	case Ext2GC:
		return "EXT2+GC"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// TPCCConfig sizes the §5.2 experiments. The zero value is a laptop-scale
// configuration preserving the paper's structure; PaperScale returns the
// full w=1 TPC-C sizing.
type TPCCConfig struct {
	DB           tpcc.Config
	Transactions int
	Concurrency  int
	Warmup       int
	LogBufferKB  int
	// CheckpointEvery flushes dirty pages every N transactions
	// (0 = runner default of 100; negative disables).
	CheckpointEvery int
	Seed            uint64
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.DB.Warehouses == 0 {
		c.DB = tpcc.Config{
			Warehouses:               1,
			Districts:                10,
			CustomersPerDistrict:     600,
			Items:                    10000,
			InitialOrdersPerDistrict: 300,
			// Smaller than the database, as the paper's 300 MB cache is
			// smaller than its >0.5 GB database: evictions of dirty pages
			// are synchronous data-disk writes, which is where Trail's
			// transparent logging pays off beyond the WAL itself.
			CachePages: 700,
			Seed:       c.Seed + 1,
		}
	}
	if c.Transactions == 0 {
		c.Transactions = 1000
	}
	if c.Concurrency == 0 {
		c.Concurrency = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 300
	}
	if c.LogBufferKB == 0 {
		c.LogBufferKB = 50
	}
	return c
}

// PaperScale returns the paper's full configuration: w=1 (10 districts,
// 3000 customers each, 100k items), 5000 measured transactions.
func PaperScale() TPCCConfig {
	return TPCCConfig{
		DB: tpcc.Config{
			Warehouses:               1,
			Districts:                10,
			CustomersPerDistrict:     3000,
			Items:                    100000,
			InitialOrdersPerDistrict: 3000,
			CachePages:               3500, // cache:database ratio ~0.3, as 300 MB : >0.5 GB
			Seed:                     2,
		},
		Transactions: 5000,
		Concurrency:  1,
		Warmup:       500,
		LogBufferKB:  50,
		Seed:         1,
	}
}

// tpccDeployment is an assembled database + transaction manager on one of
// the three storage systems.
type tpccDeployment struct {
	env    *sim.Env
	runner *tpcc.Runner
	drv    *trail.Driver // nil for non-Trail systems
}

// buildTPCC assembles the paper's §5.2 hardware: one disk dedicated to the
// database log file, two disks for tables — either behind the Trail driver
// (plus its ST41601N log disk) or behind the standard subsystem.
func buildTPCC(system StorageSystem, cfg TPCCConfig) (*tpccDeployment, error) {
	env := sim.NewEnv()
	// Physical IDE disks: 0 = DB log file, 1..2 = tables.
	var phys []*disk.Disk
	for i := 0; i < 3; i++ {
		phys = append(phys, disk.New(env, disk.WDCaviar()))
	}

	// Populate the tables through instant devices (setup, unmeasured).
	var loadErr error
	env.Go("load", func(p *sim.Proc) {
		inst := []blockdev.Device{
			disk.NewInstantDev(phys[1], blockdev.DevID{Major: 3, Minor: 1}),
			disk.NewInstantDev(phys[2], blockdev.DevID{Major: 3, Minor: 2}),
		}
		db, err := tpcc.Load(p, cfg.DB, inst)
		if err == nil {
			err = db.FlushAll(p)
		}
		loadErr = err
	})
	env.Run()
	if loadErr != nil {
		env.Close()
		return nil, fmt.Errorf("tpcc load: %w", loadErr)
	}

	dep := &tpccDeployment{env: env}
	var logDev, tab1, tab2 blockdev.Device
	switch system {
	case Ext2Trail:
		logDisk := disk.New(env, disk.ST41601N())
		if err := trail.Format(logDisk); err != nil {
			env.Close()
			return nil, err
		}
		drv, err := trail.NewDriver(env, logDisk, phys, DefaultTrailConfig())
		if err != nil {
			env.Close()
			return nil, err
		}
		dep.drv = drv
		logDev, tab1, tab2 = drv.Dev(0), drv.Dev(1), drv.Dev(2)
	case Ext2, Ext2GC:
		logDev = stddisk.New(env, phys[0], blockdev.DevID{Major: 3, Minor: 0}, sched.LOOK)
		tab1 = stddisk.New(env, phys[1], blockdev.DevID{Major: 3, Minor: 1}, sched.LOOK)
		tab2 = stddisk.New(env, phys[2], blockdev.DevID{Major: 3, Minor: 2}, sched.LOOK)
	default:
		env.Close()
		return nil, fmt.Errorf("unknown system %v", system)
	}

	mode := wal.SyncEveryCommit
	if system == Ext2GC {
		mode = wal.GroupCommit
	}
	var mgr *txn.Manager
	var openErr error
	env.Go("open", func(p *sim.Proc) {
		db, err := tpcc.Reopen(p, cfg.DB, []blockdev.Device{tab1, tab2})
		if err != nil {
			openErr = err
			return
		}
		l, err := wal.New(env, wal.Config{
			Dev:            logDev,
			Sectors:        logDev.Sectors(),
			Mode:           mode,
			BufferBytes:    cfg.LogBufferKB * 1024,
			MetadataWrites: false,
		})
		if err != nil {
			openErr = err
			return
		}
		mgr = txn.NewManager(env, l)
		dep.runner = tpcc.NewRunner(db, mgr)
	})
	env.Run()
	if openErr != nil {
		env.Close()
		return nil, fmt.Errorf("tpcc open: %w", openErr)
	}
	return dep, nil
}

// Table2Row is one column of Table 2 (transposed into a row here).
type Table2Row struct {
	System      StorageSystem
	AvgResponse time.Duration
	LogIOTime   time.Duration
	TpmC        float64
	Committed   int64
	Aborted     int64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Config TPCCConfig
	Rows   []Table2Row
}

// Table2 runs the TPC-C comparison of the three storage systems (paper
// Table 2: 5000 transactions, concurrency 1, w=1, 50 KB log buffer).
func Table2(cfg TPCCConfig) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	res := &Table2Result{Config: cfg}
	for _, sys := range []StorageSystem{Ext2Trail, Ext2, Ext2GC} {
		dep, err := buildTPCC(sys, cfg)
		if err != nil {
			return nil, fmt.Errorf("table2 %v: %w", sys, err)
		}
		r, err := dep.runner.Run(dep.env, tpcc.RunConfig{
			Transactions:    cfg.Transactions,
			Concurrency:     cfg.Concurrency,
			Warmup:          cfg.Warmup,
			Seed:            cfg.Seed + 7,
			CheckpointEvery: cfg.CheckpointEvery,
		})
		dep.env.Close()
		if err != nil {
			return nil, fmt.Errorf("table2 %v: %w", sys, err)
		}
		res.Rows = append(res.Rows, Table2Row{
			System:      sys,
			AvgResponse: r.Response.Mean(),
			LogIOTime:   r.LogIOTime,
			TpmC:        r.TpmC(),
			Committed:   r.Committed,
			Aborted:     r.Aborted,
		})
	}
	return res, nil
}

// String renders Table 2.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: TPC-C, %d txns, concurrency %d, w=%d, %d KB log buffer\n",
		r.Config.Transactions, r.Config.Concurrency, r.Config.DB.Warehouses, r.Config.LogBufferKB)
	fmt.Fprintf(&b, "%-12s %14s %16s %10s %10s %8s\n", "system", "avg resp (s)", "log I/O (s)", "tpmC", "committed", "aborted")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %14.3f %16.1f %10.0f %10d %8d\n",
			row.System, row.AvgResponse.Seconds(), row.LogIOTime.Seconds(), row.TpmC, row.Committed, row.Aborted)
	}
	if len(r.Rows) == 3 {
		fmt.Fprintf(&b, "Trail/EXT2 throughput: %.2fx (paper 1.63x);  Trail/GC: %.2fx (paper 1.51x);  log I/O cut vs EXT2: %.0f%% (paper 42%%)\n",
			r.Rows[0].TpmC/r.Rows[1].TpmC, r.Rows[0].TpmC/r.Rows[2].TpmC,
			100*(1-r.Rows[0].LogIOTime.Seconds()/r.Rows[1].LogIOTime.Seconds()))
	}
	return b.String()
}

// Table3Row is one log-buffer-size point of Table 3.
type Table3Row struct {
	LogBufferKB  int
	GroupCommits int64
	LogBytes     int64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Config TPCCConfig
	Rows   []Table3Row
}

// Table3 counts group commits (synchronous log writes) in a fixed TPC-C run
// as the log buffer size varies (paper: 10000 txns, concurrency 4, buffers
// 4..1200 KB, counts 10960 down to 39).
func Table3(cfg TPCCConfig, bufferKBs []int) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Concurrency < 2 {
		cfg.Concurrency = 4
	}
	if len(bufferKBs) == 0 {
		bufferKBs = []int{4, 100, 400, 800, 1200}
	}
	res := &Table3Result{Config: cfg}
	for _, kb := range bufferKBs {
		c := cfg
		c.LogBufferKB = kb
		dep, err := buildTPCC(Ext2GC, c)
		if err != nil {
			return nil, fmt.Errorf("table3 %dKB: %w", kb, err)
		}
		r, err := dep.runner.Run(dep.env, tpcc.RunConfig{
			Transactions:    c.Transactions,
			Concurrency:     c.Concurrency,
			Warmup:          c.Warmup,
			Seed:            c.Seed + 13,
			CheckpointEvery: c.CheckpointEvery,
		})
		dep.env.Close()
		if err != nil {
			return nil, fmt.Errorf("table3 %dKB: %w", kb, err)
		}
		res.Rows = append(res.Rows, Table3Row{LogBufferKB: kb, GroupCommits: r.LogFlushes, LogBytes: r.LogBytes})
	}
	return res, nil
}

// String renders Table 3.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: group commits in a %d-txn run, concurrency %d\n",
		r.Config.Transactions, max(r.Config.Concurrency, 4))
	fmt.Fprintf(&b, "%14s %16s %14s\n", "buffer KB", "group commits", "log KB total")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%14d %16d %14d\n", row.LogBufferKB, row.GroupCommits, row.LogBytes/1024)
	}
	b.WriteString("(paper at 10000 txns: 10960 / 448 / 113 / 57 / 39)\n")
	return b.String()
}

// UtilizationRow is one concurrency point of the §5.2 track-utilization
// analysis.
type UtilizationRow struct {
	Concurrency int
	// OneBatchUtil is per-track utilization under the paper's stated
	// assumption ("Assume Trail performs exactly one batched write to each
	// track"): the average record footprint over the average track size.
	OneBatchUtil float64
	// MeasuredUtil is the utilization the driver actually achieves with
	// its 30% threshold packing multiple records per track.
	MeasuredUtil float64
	Records      int64
	TracksUsed   int64
}

// UtilizationResult reproduces the §5.2 utilization numbers.
type UtilizationResult struct {
	Rows []UtilizationRow
}

// TrackUtilization measures Trail's per-track log disk space utilization
// under TPC-C at varying concurrency (paper: 12% at 4, 21% at 8, >30% at
// 12 — batched writes grow with burstiness).
func TrackUtilization(cfg TPCCConfig, concurrencies []int) (*UtilizationResult, error) {
	cfg = cfg.withDefaults()
	if len(concurrencies) == 0 {
		concurrencies = []int{4, 8, 12}
	}
	res := &UtilizationResult{}
	for _, conc := range concurrencies {
		c := cfg
		c.Concurrency = conc
		// Burstiness at the log disk is the object of study: the paper's
		// cache-pressured configuration stalls groups of transactions on
		// data-disk I/O, whose commits then arrive at the log in bursts
		// ("the disk I/Os occur in bursts since the CPU time each
		// transaction requires is much smaller than the disk I/O delay").
		dep, err := buildTPCC(Ext2Trail, c)
		if err != nil {
			return nil, fmt.Errorf("utilization conc=%d: %w", conc, err)
		}
		_, err = dep.runner.Run(dep.env, tpcc.RunConfig{
			Transactions:    c.Transactions,
			Concurrency:     conc,
			Warmup:          c.Warmup,
			Seed:            c.Seed + 17,
			CheckpointEvery: c.CheckpointEvery,
		})
		if err != nil {
			dep.env.Close()
			return nil, fmt.Errorf("utilization conc=%d: %w", conc, err)
		}
		s := dep.drv.Stats()
		g := disk.ST41601N().Geom
		avgSPT := float64(g.TotalSectors()) / float64(g.TotalTracks())
		oneBatch := 0.0
		if s.Records > 0 {
			oneBatch = (float64(s.LoggedSectors+s.Records) / float64(s.Records)) / avgSPT
		}
		dep.env.Close()
		res.Rows = append(res.Rows, UtilizationRow{
			Concurrency:  conc,
			OneBatchUtil: oneBatch,
			MeasuredUtil: s.AvgTrackUtilization(),
			Records:      s.Records,
			TracksUsed:   s.TrackUtilTracks,
		})
	}
	return res, nil
}

// String renders the utilization sweep.
func (r *UtilizationResult) String() string {
	var b strings.Builder
	b.WriteString("Section 5.2: per-track log disk utilization vs concurrency\n")
	fmt.Fprintf(&b, "%12s %14s %14s %10s %8s\n", "concurrency", "one-batch util", "measured util", "records", "tracks")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12d %13.1f%% %13.1f%% %10d %8d\n",
			row.Concurrency, 100*row.OneBatchUtil, 100*row.MeasuredUtil, row.Records, row.TracksUsed)
	}
	b.WriteString("(paper: 12% at 4, 21% at 8, >30% at 12)\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
