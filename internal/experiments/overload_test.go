package experiments

import "testing"

func TestOverloadQoSBoundsTail(t *testing.T) {
	res, err := Overload([]float64{2.0}, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	off, on := res.Rows[0], res.Rows[1]
	if off.QoS || !on.QoS {
		t.Fatalf("row order: %+v / %+v", off, on)
	}
	// At 2x saturation the policy must shed explicitly...
	if on.Shed == 0 {
		t.Error("QoS shed nothing at 2x saturation")
	}
	// ...bound the queue the unprotected driver lets grow...
	if on.MaxLogQueue >= off.MaxLogQueue {
		t.Errorf("queue high-water: qos=%d vs off=%d", on.MaxLogQueue, off.MaxLogQueue)
	}
	// ...and keep the tail of accepted work below the unprotected tail.
	if on.P99 >= off.P99 {
		t.Errorf("p99: qos=%v vs off=%v", on.P99, off.P99)
	}
	// Nothing acknowledged was lost either way.
	if off.Acked+off.Shed+off.Expired != 200 || on.Acked+on.Shed+on.Expired != 200 {
		t.Errorf("request accounting: off=%+v on=%+v", off, on)
	}
}
