package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sim"
)

// DeltaRow is one point of the §3.1 delta calibration sweep.
type DeltaRow struct {
	Delta int
	Mean  time.Duration
	// FullRotation marks deltas whose writes land behind the head and pay
	// ~a full revolution.
	FullRotation bool
}

// DeltaResult is the §3.1 calibration outcome.
type DeltaResult struct {
	Rows []DeltaRow
	// BestDelta is the smallest delta that does not incur a full rotation
	// (the paper finds "less than 15" for the ST41601N).
	BestDelta int
	RotPeriod time.Duration
}

// DeltaCalibration reproduces the paper's §3.1 delta derivation: perform a
// series of single-sector writes with the raw prediction formula
// S1 = elapsed + S0 + delta for increasing delta, and find the smallest
// delta whose writes do not pay a full rotation. The rig uses the paper's
// ST41601N log disk.
func DeltaCalibration(deltas []int, writesPerPoint int) (*DeltaResult, error) {
	if len(deltas) == 0 {
		deltas = []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24}
	}
	if writesPerPoint == 0 {
		writesPerPoint = 20
	}
	var res DeltaResult
	for _, delta := range deltas {
		cfg := DefaultTrailConfig()
		cfg.FixedDelta = delta
		rig, err := newTrailRig(1, cfg)
		if err != nil {
			return nil, err
		}
		if res.RotPeriod == 0 {
			res.RotPeriod = rig.log.Params().RotPeriod()
		}
		dev := rig.drv.Dev(0)
		lat := metrics.NewSummary()
		rig.env.Go("calib", func(p *sim.Proc) {
			dev.Write(p, 0, 1, make([]byte, geom.SectorSize)) // establish reference
			for i := 1; i <= writesPerPoint; i++ {
				p.Sleep(3 * time.Millisecond)
				start := p.Now()
				if err := dev.Write(p, int64(i*64), 1, make([]byte, geom.SectorSize)); err != nil {
					panic(err)
				}
				lat.Add(p.Now().Sub(start))
			}
		})
		rig.env.Run()
		rig.env.Close()
		row := DeltaRow{
			Delta:        delta,
			Mean:         lat.Mean(),
			FullRotation: lat.Mean() > res.RotPeriod/2,
		}
		res.Rows = append(res.Rows, row)
		if !row.FullRotation && res.BestDelta == 0 {
			res.BestDelta = delta
		}
	}
	return &res, nil
}

// String renders the sweep.
func (r *DeltaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 3.1: delta calibration (rotation %.2f ms)\n", r.RotPeriod.Seconds()*1000)
	fmt.Fprintf(&b, "%8s %12s %14s\n", "delta", "mean ms", "full rotation")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12s %14v\n", row.Delta, fmtMS(row.Mean), row.FullRotation)
	}
	fmt.Fprintf(&b, "smallest safe delta: %d (paper: <15 for ST41601N)\n", r.BestDelta)
	return b.String()
}

// AnatomyResult is the §5.1 latency anatomy: the fixed-cost structure of
// Trail writes on the paper's hardware.
type AnatomyResult struct {
	// OneSector is the mean latency of a one-sector synchronous write
	// (paper: ~1.40 ms).
	OneSector time.Duration
	// FourKB is the mean latency of a 4 KB synchronous write (the paper's
	// abstract claims <1.5 ms; §5.1's own arithmetic gives ~2.4 ms).
	FourKB time.Duration
	// SectorTransfer is the raw one-sector media transfer time at the
	// outer zone (paper: ~0.13 ms).
	SectorTransfer time.Duration
	// Reposition is the mean track-switch cost (paper: ~1.5 ms).
	Reposition time.Duration
	// WritesPerSecondOneSector is the paper's 333 writes/s figure
	// (one-sector write + reposition).
	WritesPerSecondOneSector float64
}

// LatencyAnatomy reproduces §5.1's component analysis on the ST41601N.
func LatencyAnatomy(writes int) (*AnatomyResult, error) {
	if writes == 0 {
		writes = 50
	}
	res := &AnatomyResult{}
	measure := func(sectors int) (time.Duration, time.Duration, error) {
		// Low utilization threshold forces a reposition after every write
		// so its cost is sampled continuously.
		cfg := DefaultTrailConfig()
		rig, err := newTrailRig(1, cfg)
		if err != nil {
			return 0, 0, err
		}
		defer rig.env.Close()
		dev := rig.drv.Dev(0)
		lat := metrics.NewSummary()
		rig.env.Go("anatomy", func(p *sim.Proc) {
			dev.Write(p, 0, sectors, make([]byte, sectors*geom.SectorSize))
			for i := 1; i <= writes; i++ {
				p.Sleep(10 * time.Millisecond) // sparse: repositioning masked
				start := p.Now()
				if err := dev.Write(p, int64(i*256), sectors, make([]byte, sectors*geom.SectorSize)); err != nil {
					panic(err)
				}
				lat.Add(p.Now().Sub(start))
			}
		})
		rig.env.Run()
		s := rig.drv.Stats()
		var repos time.Duration
		if s.Repositions > 0 {
			repos = s.RepositionTime / time.Duration(s.Repositions)
		}
		return lat.Mean(), repos, nil
	}
	var err error
	var repos1 time.Duration
	if res.OneSector, repos1, err = measure(1); err != nil {
		return nil, err
	}
	if res.FourKB, _, err = measure(8); err != nil {
		return nil, err
	}
	res.Reposition = repos1
	res.SectorTransfer = newParamsSectorTime()
	cycle := res.OneSector + res.Reposition
	if cycle > 0 {
		res.WritesPerSecondOneSector = float64(time.Second) / float64(cycle)
	}
	return res, nil
}

func newParamsSectorTime() time.Duration {
	rig, err := newTrailRig(1, DefaultTrailConfig())
	if err != nil {
		return 0
	}
	defer rig.env.Close()
	return rig.log.Params().SectorTime(0)
}

// String renders the anatomy.
func (r *AnatomyResult) String() string {
	var b strings.Builder
	b.WriteString("Section 5.1: Trail write latency anatomy (ST41601N)\n")
	fmt.Fprintf(&b, "one-sector sync write:    %s ms   (paper ~1.40)\n", fmtMS(r.OneSector))
	fmt.Fprintf(&b, "4-KByte sync write:       %s ms   (abstract <1.5; Section 5.1 arithmetic ~2.4)\n", fmtMS(r.FourKB))
	fmt.Fprintf(&b, "sector transfer:          %s ms   (paper ~0.13)\n", fmtMS(r.SectorTransfer))
	fmt.Fprintf(&b, "reposition (track switch):%s ms   (paper ~1.5)\n", fmtMS(r.Reposition))
	fmt.Fprintf(&b, "1-sector writes/sec incl. reposition: %.0f (paper ~333)\n", r.WritesPerSecondOneSector)
	return b.String()
}
