package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/qos"
	"tracklog/internal/workload"
)

// Overload: the paper evaluates Trail at offered loads the log disk can
// absorb; this experiment pushes past that point to measure what the QoS
// layer buys. A closed-loop calibration run first finds the device's
// saturation service time; the sweep then offers open-loop load at fixed
// multiples of that rate, once with QoS disabled (the historical unbounded
// driver) and once with the default overload policy. Under QoS the driver
// sheds excess load explicitly and keeps the latency of what it does accept
// bounded; without it the log queue and staging grow with every arrival and
// tail latency follows.

// OverloadRow is one cell of the sweep: one offered-load multiplier under
// one policy.
type OverloadRow struct {
	// Multiplier is offered load relative to calibrated saturation (1.0 =
	// arrivals exactly at the calibrated service rate).
	Multiplier float64
	// QoS is whether the overload policy was active.
	QoS bool
	// Acked/Shed/Expired partition the issued requests by outcome.
	Acked, Shed, Expired int64
	// Mean/P50/P99 summarize acknowledged-write latency only.
	Mean, P50, P99 time.Duration
	// MaxLogQueue is the log queue's high-water mark: bounded under QoS,
	// growing with offered load without it.
	MaxLogQueue int
}

// OverloadResult is the full latency-vs-offered-load sweep.
type OverloadResult struct {
	// ServiceTime is the calibrated per-write service time at saturation.
	ServiceTime time.Duration
	Rows        []OverloadRow
}

// overloadPolicy is the sweep's QoS configuration: the default policy with
// a deadline comfortably above saturated-but-healthy latency, so expiry
// marks genuine overload rather than ordinary queueing.
func overloadPolicy() *qos.Policy {
	pol := qos.Default()
	pol.DefaultDeadline = 500 * time.Millisecond
	return pol
}

// Overload calibrates saturation with a closed-loop run, then sweeps
// offered-load multipliers with and without the QoS policy. requests is the
// number of open-loop arrivals per cell (default 300).
func Overload(multipliers []float64, requests int, seed uint64) (*OverloadResult, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1.0, 2.0}
	}
	if requests == 0 {
		requests = 300
	}
	svc, err := calibrateSaturation(seed)
	if err != nil {
		return nil, fmt.Errorf("overload calibration: %w", err)
	}
	res := &OverloadResult{ServiceTime: svc}
	for _, m := range multipliers {
		for _, withQoS := range []bool{false, true} {
			row, err := overloadCell(m, withQoS, svc, requests, seed)
			if err != nil {
				return nil, fmt.Errorf("overload %.1fx qos=%v: %w", m, withQoS, err)
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// calibrateSaturation measures the per-write service time at saturation
// with an open-loop probe far above capacity: arrivals every 50µs swamp the
// log disk, so every record ships a full batch and elapsed/acked is the
// best sustained per-write service time batching can deliver. (A
// closed-loop probe would measure per-write *latency*, which is several
// times higher than the batched service time and would make "2× load"
// comfortably sustainable.)
func calibrateSaturation(seed uint64) (time.Duration, error) {
	rig, err := newTrailRig(1, DefaultTrailConfig())
	if err != nil {
		return 0, err
	}
	defer rig.env.Close()
	const writes = 200
	wres, err := workload.RunOpenLoopWrites(rig.env, rig.drv.Dev(0), workload.OpenLoopConfig{
		Interarrival: 50 * time.Microsecond,
		Requests:     writes,
		WriteSize:    1024,
		Seed:         seed,
	})
	if err != nil {
		return 0, err
	}
	if wres.Acked != writes {
		return 0, fmt.Errorf("probe lost writes: %d/%d acked", wres.Acked, writes)
	}
	return wres.Elapsed / writes, nil
}

// overloadCell runs one open-loop cell of the sweep.
func overloadCell(multiplier float64, withQoS bool, svc time.Duration, requests int, seed uint64) (*OverloadRow, error) {
	cfg := DefaultTrailConfig()
	if withQoS {
		cfg.QoS = overloadPolicy()
	}
	rig, err := newTrailRig(1, cfg)
	if err != nil {
		return nil, err
	}
	defer rig.env.Close()
	interarrival := time.Duration(float64(svc) / multiplier)
	if interarrival <= 0 {
		interarrival = time.Microsecond
	}
	wres, err := workload.RunOpenLoopWrites(rig.env, rig.drv.Dev(0), workload.OpenLoopConfig{
		Interarrival: interarrival,
		Requests:     requests,
		WriteSize:    1024,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	if wres.OtherErrors > 0 {
		return nil, fmt.Errorf("%d unexpected write errors", wres.OtherErrors)
	}
	st := rig.drv.Stats()
	return &OverloadRow{
		Multiplier:  multiplier,
		QoS:         withQoS,
		Acked:       wres.Acked,
		Shed:        wres.Shed,
		Expired:     wres.Expired,
		Mean:        wres.Latency.Mean(),
		P50:         wres.Latency.Quantile(0.50),
		P99:         wres.Latency.Quantile(0.99),
		MaxLogQueue: st.MaxLogQueue,
	}, nil
}

// String renders the sweep as a table.
func (r *OverloadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload: latency vs offered load (1KB sync writes, saturation service time %s ms)\n",
		fmtMS(r.ServiceTime))
	fmt.Fprintf(&b, "%6s %5s %7s %6s %8s %9s %8s %8s %7s\n",
		"load", "qos", "acked", "shed", "expired", "mean ms", "p50 ms", "p99 ms", "maxq")
	for _, row := range r.Rows {
		qosStr := "off"
		if row.QoS {
			qosStr = "on"
		}
		fmt.Fprintf(&b, "%5.1fx %5s %7d %6d %8d %9s %8s %8s %7d\n",
			row.Multiplier, qosStr, row.Acked, row.Shed, row.Expired,
			fmtMS(row.Mean), fmtMS(row.P50), fmtMS(row.P99), row.MaxLogQueue)
	}
	return b.String()
}
