package experiments

import (
	"strings"
	"testing"

	"tracklog/internal/trace"
	"tracklog/internal/workload"
)

func TestFigure3Traced(t *testing.T) {
	res, err := Figure3Traced(Figure3Config{
		SizesKB:          []int{1, 4},
		WritesPerProcess: 30,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanLatency <= 0 {
			t.Errorf("%dKB: non-positive latency %v", row.SizeKB, row.MeanLatency)
		}
		if row.Predictions == 0 {
			t.Errorf("%dKB: no predictions audited", row.SizeKB)
		}
		if row.MissRate < 0 || row.MissRate > 1 {
			t.Errorf("%dKB: miss rate %v out of range", row.SizeKB, row.MissRate)
		}
		// The paper's mechanism: predictions land just ahead of the head, so
		// mean rotational wait must be far below a full rotation (~11.1ms on
		// the ST41601N at 5400 rpm) — this is the claim the audit checks.
		if row.MeanRotWait.Milliseconds() >= 6 {
			t.Errorf("%dKB: mean rotational wait %v is rotation-scale — predictor broken",
				row.SizeKB, row.MeanRotWait)
		}
		if row.Events == 0 {
			t.Errorf("%dKB: no trace events", row.SizeKB)
		}
		// The span columns must tile the mean latency exactly, up to the
		// few ns the per-column integer divisions lose.
		sum := row.Queue + row.Mech + row.SpanRotWait + row.Xfer
		if d := row.MeanLatency - sum; d < -8 || d > 8 {
			t.Errorf("%dKB: span columns sum to %v, latency %v", row.SizeKB, sum, row.MeanLatency)
		}
		// And the attributed rotational wait must agree with the audit's
		// ground truth (the audit sees only log writes; the span layer sees
		// the same commands).
		if row.SpanRotWait <= 0 {
			t.Errorf("%dKB: no span-attributed rotational wait", row.SizeKB)
		}
	}
	out := res.String()
	if !strings.Contains(out, "prediction audit") || !strings.Contains(out, "miss %") {
		t.Errorf("render missing expected headers:\n%s", out)
	}
}

// A traced Trail run must report exactly the same client-visible latency as
// an untraced run of the same seed: tracing is observation only.
func TestTracingDoesNotPerturbWorkload(t *testing.T) {
	run := func(traced bool) (elapsed, mean int64) {
		rig, err := newTrailRig(1, DefaultTrailConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer rig.env.Close()
		if traced {
			tr := trace.New(0)
			rig.env.SetTracer(tr)
			rig.drv.SetTracer(tr)
		}
		res, err := workload.RunSyncWrites(rig.env, rig.drv.Dev(0), workload.SyncWriteConfig{
			Mode:             workload.Sparse,
			WriteSize:        2048,
			Processes:        2,
			WritesPerProcess: 25,
			Seed:             7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed), int64(res.Latency.Mean())
	}
	e0, m0 := run(false)
	e1, m1 := run(true)
	if e0 != e1 || m0 != m1 {
		t.Fatalf("traced run diverged: elapsed %d vs %d, mean %d vs %d", e0, e1, m0, m1)
	}
}
