package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/fslite"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// FSMetaRow is one storage system's O_SYNC file-append cost.
type FSMetaRow struct {
	System     string
	MeanAppend time.Duration
	DataWrites int64
	MetaWrites int64
}

// FSMetaResult reproduces the paper's §2 generality argument: an O_SYNC
// append pays synchronous data AND metadata writes (inode, bitmap, indirect
// block); metadata journaling helps only the latter, while Trail
// transparently accelerates every block.
type FSMetaResult struct {
	Rows []FSMetaRow
}

// FSMetadata measures synchronous file appends through the EXT2-like file
// system on the standard subsystem and on Trail.
func FSMetadata(appends int, seed uint64) (*FSMetaResult, error) {
	if appends == 0 {
		appends = 50
	}
	res := &FSMetaResult{}
	for _, useTrail := range []bool{false, true} {
		env := sim.NewEnv()
		var dev blockdev.Device
		name := "standard"
		if useTrail {
			name = "trail"
			lg := disk.New(env, disk.ST41601N())
			if err := trail.Format(lg); err != nil {
				env.Close()
				return nil, err
			}
			dd := disk.New(env, disk.WDCaviar())
			drv, err := trail.NewDriver(env, lg, []*disk.Disk{dd}, DefaultTrailConfig())
			if err != nil {
				env.Close()
				return nil, err
			}
			dev = drv.Dev(0)
		} else {
			dd := disk.New(env, disk.WDCaviar())
			dev = stddisk.New(env, dd, blockdev.DevID{Major: 3}, sched.LOOK)
		}
		var row FSMetaRow
		row.System = name
		var ferr error
		env.Go("bench", func(p *sim.Proc) {
			fs, err := fslite.Mkfs(p, dev)
			if err != nil {
				ferr = err
				return
			}
			f, err := fs.Create(p, "applog")
			if err != nil {
				ferr = err
				return
			}
			f.Sync = true
			before := fs.Stats()
			start := p.Now()
			for i := 0; i < appends; i++ {
				if err := f.Append(p, make([]byte, fslite.BlockSize)); err != nil {
					ferr = err
					return
				}
			}
			row.MeanAppend = p.Now().Sub(start) / time.Duration(appends)
			after := fs.Stats()
			row.DataWrites = after.DataWrites - before.DataWrites
			row.MetaWrites = after.MetaWrites - before.MetaWrites
		})
		env.Run()
		env.Close()
		if ferr != nil {
			return nil, fmt.Errorf("fsmeta %s: %w", name, ferr)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the comparison.
func (r *FSMetaResult) String() string {
	var b strings.Builder
	b.WriteString("Section 2: O_SYNC file appends (data + metadata sync writes)\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %12s\n", "system", "mean append", "data writes", "meta writes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %11s ms %12d %12d\n", row.System, fmtMS(row.MeanAppend), row.DataWrites, row.MetaWrites)
	}
	b.WriteString("(Trail accelerates metadata and data writes alike; metadata journaling\n would help only the metadata share, and a raw-device database not at all)\n")
	return b.String()
}
