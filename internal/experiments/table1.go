package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/geom"
	"tracklog/internal/sim"
	"tracklog/internal/trail"
)

// Table1Row is one batch-size point of Table 1: total elapsed time to
// service a fixed sequence of one-sector synchronous writes.
type Table1Row struct {
	BatchSize int
	Elapsed   time.Duration
	Records   int64 // physical log writes actually issued
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Writes int
	Rows   []Table1Row
}

// Table1 reproduces Table 1: the total elapsed time for servicing a
// sequence of `writes` one-sector synchronous writes as the write batch
// size varies (paper: 32 writes, batch sizes 1..32, a ~15x spread).
//
// All writes are queued at time zero; the driver's MaxBatchSectors caps how
// many are aggregated per physical log write, exactly the knob the paper
// sweeps.
func Table1(writes int, batchSizes []int) (*Table1Result, error) {
	if writes == 0 {
		writes = 32
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{1, 2, 4, 8, 16, 32}
	}
	res := &Table1Result{Writes: writes}
	for _, bs := range batchSizes {
		cfg := DefaultTrailConfig()
		cfg.MaxBatchSectors = bs
		if bs == 1 {
			cfg.DisableBatching = true
		}
		rig, err := newTrailRig(1, cfg)
		if err != nil {
			return nil, err
		}
		dev := rig.drv.Dev(0)
		// Warm the driver (establish the prediction reference point) so the
		// measurement starts from steady state, as the paper's does.
		rig.env.Go("warmup", func(p *sim.Proc) {
			if err := dev.Write(p, 1<<20, 1, make([]byte, geom.SectorSize)); err != nil {
				panic(err)
			}
		})
		rig.env.Run()
		warmRecords := rig.drv.Stats().Records
		var first, last sim.Time
		done := 0
		for i := 0; i < writes; i++ {
			lba := int64(i * 64)
			rig.env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				if first == 0 {
					first = p.Now()
				}
				if err := dev.Write(p, lba, 1, make([]byte, geom.SectorSize)); err != nil {
					panic(err)
				}
				done++
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		rig.env.Run()
		if done != writes {
			rig.env.Close()
			return nil, fmt.Errorf("table1 batch %d: %d of %d writes completed", bs, done, writes)
		}
		res.Rows = append(res.Rows, Table1Row{
			BatchSize: bs,
			Elapsed:   last.Sub(first),
			Records:   rig.drv.Stats().Records - warmRecords,
		})
		rig.env.Close()
	}
	return res, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: elapsed time for %d one-sector writes vs batch size\n", r.Writes)
	fmt.Fprintf(&b, "%10s %14s %9s\n", "batch", "elapsed ms", "records")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %14s %9d\n", row.BatchSize, fmtMS(row.Elapsed), row.Records)
	}
	if len(r.Rows) > 1 {
		ratio := float64(r.Rows[0].Elapsed) / float64(r.Rows[len(r.Rows)-1].Elapsed)
		fmt.Fprintf(&b, "spread (batch %d vs %d): %.1fx (paper: ~15x)\n",
			r.Rows[0].BatchSize, r.Rows[len(r.Rows)-1].BatchSize, ratio)
	}
	return b.String()
}

var _ = trail.MaxBatch // document the cap the sweep tops out at
