package experiments

// Cluster experiments: scaling a Trail deployment out to N shards and
// proving the robustness story. The sweep measures throughput and tail
// latency as the same offered load spreads over more shards; the
// kill-one-shard experiment is the acceptance test for the failure path —
// a shard dies mid-run and every acknowledged write must remain readable
// through the surviving replica, with the surviving shards' tails bounded
// and the replacement shard rebuilt back to healthy.

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/cluster"
	"tracklog/internal/fault"
	"tracklog/internal/metrics"
	"tracklog/internal/qos"
	"tracklog/internal/sim"
	"tracklog/internal/workload"
)

// defaultClusterMix is the multi-tenant mix every cluster experiment
// drives: 30% reads, zipf-skewed tenants, 15% background and 10%
// interactive traffic.
func defaultClusterMix(tenants, requests int, seed uint64) (workload.MixConfig, error) {
	cfg := workload.MixConfig{
		Tenants:           tenants,
		Requests:          requests,
		ReadFraction:      0.3,
		Interarrival:      400 * time.Microsecond,
		ZipfS:             0.9,
		BackgroundWeight:  15,
		InteractiveWeight: 10,
		Seed:              seed,
	}
	return cfg, nil
}

// ClusterPoint is one cell of the scale-out sweep.
type ClusterPoint struct {
	Shards int
	// Acked/Shed/Failed partition the writes; ReadsOK/ReadsFailed the reads.
	Acked, Shed, Failed  int64
	ReadsOK, ReadsFailed int64
	// WMean/WP50/WP99 summarize acked-write latency, the R* series served
	// reads.
	WMean, WP50, WP99 time.Duration
	RMean, RP50, RP99 time.Duration
	// AckedPerSec is acked-write throughput over the span of arrivals.
	AckedPerSec float64
}

// ClusterResult is the full shard-count sweep.
type ClusterResult struct {
	Tenants, Requests int
	Points            []ClusterPoint
}

// Cluster sweeps shard counts under a fixed offered load. requests is the
// arrivals per cell (default 1200), tenants the tenant population (default
// 48).
func Cluster(shardCounts []int, tenants, requests int, seed uint64) (*ClusterResult, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{2, 4, 8}
	}
	if tenants == 0 {
		tenants = 48
	}
	if requests == 0 {
		requests = 1200
	}
	res := &ClusterResult{Tenants: tenants, Requests: requests}
	for _, n := range shardCounts {
		pt, err := clusterCell(n, tenants, requests, seed)
		if err != nil {
			return nil, fmt.Errorf("cluster %d shards: %w", n, err)
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func clusterCell(shards, tenants, requests int, seed uint64) (*ClusterPoint, error) {
	env := sim.NewEnv()
	defer env.Close()
	c, err := cluster.New(env, cluster.Config{
		Shards:  shards,
		Tenants: tenants,
		QoS:     qos.Default(),
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	mixCfg, err := defaultClusterMix(tenants, requests, seed)
	if err != nil {
		return nil, err
	}
	mix, err := workload.GenerateMix(mixCfg)
	if err != nil {
		return nil, err
	}
	res := c.RunMix(mix)
	env.Run()

	pt := &ClusterPoint{Shards: shards}
	w, r := metrics.NewSummary(), metrics.NewSummary()
	var firstAt, lastAt time.Duration
	for _, o := range res.Outcomes {
		if o.Read {
			if o.OK {
				pt.ReadsOK++
				r.Add(o.Latency)
			} else {
				pt.ReadsFailed++
			}
			continue
		}
		switch {
		case o.OK:
			pt.Acked++
			w.Add(o.Latency)
			if firstAt == 0 || o.At < firstAt {
				firstAt = o.At
			}
			if o.At > lastAt {
				lastAt = o.At
			}
		case o.Shed:
			pt.Shed++
		default:
			pt.Failed++
		}
	}
	pt.WMean, pt.WP50, pt.WP99 = w.Mean(), w.Quantile(0.50), w.Quantile(0.99)
	pt.RMean, pt.RP50, pt.RP99 = r.Mean(), r.Quantile(0.50), r.Quantile(0.99)
	if span := lastAt - firstAt; span > 0 {
		pt.AckedPerSec = float64(pt.Acked) / span.Seconds()
	}
	return pt, nil
}

// String renders the sweep as a table.
func (r *ClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster scale-out: %d tenants, %d requests, multi-tenant mix\n",
		r.Tenants, r.Requests)
	fmt.Fprintf(&b, "%7s %7s %5s %7s %8s %8s %8s %8s %8s %9s\n",
		"shards", "acked", "shed", "failed", "readsOK", "w-mean", "w-p99", "r-mean", "r-p99", "acked/s")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%7d %7d %5d %7d %8d %8s %8s %8s %8s %9.0f\n",
			pt.Shards, pt.Acked, pt.Shed, pt.Failed, pt.ReadsOK,
			fmtMS(pt.WMean), fmtMS(pt.WP99), fmtMS(pt.RMean), fmtMS(pt.RP99), pt.AckedPerSec)
	}
	return b.String()
}

// ClusterKillConfig parameterizes the kill-one-shard experiment.
type ClusterKillConfig struct {
	Shards    int           // default 4
	Tenants   int           // default 48
	Requests  int           // default 1200
	KillShard int           // default 1
	KillAt    time.Duration // default 250ms
	Seed      uint64
}

func (cfg ClusterKillConfig) withDefaults() ClusterKillConfig {
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 48
	}
	if cfg.Requests == 0 {
		cfg.Requests = 1200
	}
	if cfg.KillShard == 0 {
		cfg.KillShard = 1
	}
	if cfg.KillAt == 0 {
		cfg.KillAt = 250 * time.Millisecond
	}
	return cfg
}

// ClusterKillResult is the outcome of the kill-one-shard run.
type ClusterKillResult struct {
	Cfg ClusterKillConfig
	// Checked/Lost are the readback verification: every acked slot is read
	// through the routed path and matched against its acked payloads. Lost
	// must be zero.
	Checked, Lost int64
	// Acked/DegradedAcks/Shed/Failed partition the mix's writes.
	Acked, DegradedAcks, Shed, Failed int64
	// Failovers/Hedges/RebuildCopies expose the failure machinery at work.
	Failovers, Hedges, RebuildCopies int64
	// SurvivorP99Pre/Post are acked-write p99 on requests NOT involving the
	// killed shard, before and after the kill: the blast-radius bound.
	SurvivorP99Pre, SurvivorP99Post time.Duration
	// InvolvedP99Post is acked-write p99 on requests routed through the
	// killed shard's pair after the kill — the degraded path's tail.
	InvolvedP99Post time.Duration
	// FinalStates is each shard's health state at end of run.
	FinalStates []string
	// KilledShardGen is the killed slot's hardware generation at end of run
	// (1 after one replacement).
	KilledShardGen int
}

// ClusterKillOneShard runs the acceptance experiment: a shard dies mid-mix,
// the run completes degraded, the replacement rebuilds, and every
// acknowledged write is verified readable.
func ClusterKillOneShard(cfg ClusterKillConfig) (*ClusterKillResult, error) {
	cfg = cfg.withDefaults()
	if cfg.KillShard < 0 || cfg.KillShard >= cfg.Shards {
		return nil, fmt.Errorf("kill shard %d out of range [0,%d)", cfg.KillShard, cfg.Shards)
	}
	env := sim.NewEnv()
	defer env.Close()
	c, err := cluster.New(env, cluster.Config{
		Shards:  cfg.Shards,
		Tenants: cfg.Tenants,
		QoS:     qos.Default(),
		Scenario: fault.ShardScenario{
			Events: []fault.ShardEvent{{Shard: cfg.KillShard, At: cfg.KillAt}},
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	mixCfg, err := defaultClusterMix(cfg.Tenants, cfg.Requests, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mix, err := workload.GenerateMix(mixCfg)
	if err != nil {
		return nil, err
	}
	res := c.RunMix(mix)
	env.Run()

	out := &ClusterKillResult{Cfg: cfg}
	survPre, survPost, invPost := metrics.NewSummary(), metrics.NewSummary(), metrics.NewSummary()
	for _, o := range res.Outcomes {
		if o.Read {
			continue
		}
		switch {
		case o.OK:
			out.Acked++
		case o.Shed:
			out.Shed++
			continue
		default:
			out.Failed++
			continue
		}
		involved := c.Involved(o.Tenant, cfg.KillShard)
		switch {
		case o.At < cfg.KillAt && !involved:
			survPre.Add(o.Latency)
		case !involved:
			survPost.Add(o.Latency)
		case o.At >= cfg.KillAt:
			invPost.Add(o.Latency)
		}
	}
	st := c.Stats()
	out.DegradedAcks = st.DegradedAcks
	out.Failovers = st.Failovers
	out.Hedges = st.Hedges
	out.RebuildCopies = st.RebuildCopies
	out.SurvivorP99Pre = survPre.Quantile(0.99)
	out.SurvivorP99Post = survPost.Quantile(0.99)
	out.InvolvedP99Post = invPost.Quantile(0.99)
	for i := 0; i < c.NumShards(); i++ {
		out.FinalStates = append(out.FinalStates, c.ShardState(i).String())
	}
	out.KilledShardGen = c.ShardGen(cfg.KillShard)

	env.Go("verify", func(p *sim.Proc) {
		out.Checked, out.Lost = c.VerifyAcked(p)
	})
	env.Run()
	return out, nil
}

// String renders the kill experiment's verdict.
func (r *ClusterKillResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kill-one-shard: %d shards, shard %d killed at %s into a %d-request mix\n",
		r.Cfg.Shards, r.Cfg.KillShard, r.Cfg.KillAt, r.Cfg.Requests)
	fmt.Fprintf(&b, "  writes: %d acked (%d degraded), %d shed, %d failed\n",
		r.Acked, r.DegradedAcks, r.Shed, r.Failed)
	fmt.Fprintf(&b, "  failure path: %d failovers, %d hedges, %d slots rebuilt\n",
		r.Failovers, r.Hedges, r.RebuildCopies)
	fmt.Fprintf(&b, "  survivor write p99: %s ms pre-kill, %s ms post-kill; involved post-kill %s ms\n",
		fmtMS(r.SurvivorP99Pre), fmtMS(r.SurvivorP99Post), fmtMS(r.InvolvedP99Post))
	fmt.Fprintf(&b, "  final shard states: %s (killed shard generation %d)\n",
		strings.Join(r.FinalStates, " "), r.KilledShardGen)
	fmt.Fprintf(&b, "  verification: %d acked slots read back, %d lost\n", r.Checked, r.Lost)
	return b.String()
}
