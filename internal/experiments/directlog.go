package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/fslite"
	"tracklog/internal/metrics"
	"tracklog/internal/sim"
	"tracklog/internal/trail"
	"tracklog/internal/wal"
)

// DirectLogRow is one configuration of the §6 direct-logging comparison.
type DirectLogRow struct {
	Path       string
	MeanCommit time.Duration
	Flushes    int64
}

// DirectLogResult compares database logging directly on a raw Trail device
// against logging through a file in the file system — the paper's §6
// ongoing work ("applying track-based logging directly to database logging
// rather than indirectly through the file system").
type DirectLogResult struct {
	Rows []DirectLogRow
}

// DirectLogging commits `commits` transactions' worth of log records (~2 KB
// each) through both paths on identical Trail hardware.
func DirectLogging(commits int, seed uint64) (*DirectLogResult, error) {
	if commits == 0 {
		commits = 100
	}
	res := &DirectLogResult{}
	for _, direct := range []bool{true, false} {
		env := sim.NewEnv()
		lg := disk.New(env, disk.ST41601N())
		if err := trail.Format(lg); err != nil {
			env.Close()
			return nil, err
		}
		dd := disk.New(env, disk.WDCaviar())
		drv, err := trail.NewDriver(env, lg, []*disk.Disk{dd}, DefaultTrailConfig())
		if err != nil {
			env.Close()
			return nil, err
		}

		name := "raw trail device (direct)"
		lat := metrics.NewSummary()
		var flushes int64
		var ferr error
		env.Go("bench", func(p *sim.Proc) {
			var dev blockdev.Device = drv.Dev(0)
			if !direct {
				name = "file system file (indirect)"
				fs, err := fslite.Mkfs(p, drv.Dev(0))
				if err != nil {
					ferr = err
					return
				}
				f, err := fs.Create(p, "dblog")
				if err != nil {
					ferr = err
					return
				}
				dev, err = fslite.NewFileDevice(f, blockdev.DevID{Major: 7}, 2048)
				if err != nil {
					ferr = err
					return
				}
			}
			l, err := wal.New(env, wal.Config{Dev: dev, Sectors: dev.Sectors(), Mode: wal.SyncEveryCommit})
			if err != nil {
				ferr = err
				return
			}
			rec := make([]byte, 2048)
			for i := 0; i < commits; i++ {
				start := p.Now()
				lsn, err := l.Append(p, rec)
				if err != nil {
					ferr = err
					return
				}
				if err := l.Commit(p, lsn); err != nil {
					ferr = err
					return
				}
				lat.Add(p.Now().Sub(start))
				p.Sleep(3 * time.Millisecond)
			}
			flushes = l.Stats().Flushes
		})
		env.Run()
		env.Close()
		if ferr != nil {
			return nil, fmt.Errorf("directlog (%s): %w", name, ferr)
		}
		res.Rows = append(res.Rows, DirectLogRow{Path: name, MeanCommit: lat.Mean(), Flushes: flushes})
	}
	return res, nil
}

// String renders the comparison.
func (r *DirectLogResult) String() string {
	var b strings.Builder
	b.WriteString("Extension (section 6): database logging direct vs through the file system\n")
	fmt.Fprintf(&b, "%-28s %14s %9s\n", "path", "mean commit", "flushes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %11s ms %9d\n", row.Path, fmtMS(row.MeanCommit), row.Flushes)
	}
	b.WriteString("(the file system detour adds inode/bitmap metadata writes per commit)\n")
	return b.String()
}
