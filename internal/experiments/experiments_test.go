package experiments

import (
	"strings"
	"testing"
	"time"

	"tracklog/internal/tpcc"
)

// smallTPCC returns a fast configuration preserving the experiments'
// structure.
func smallTPCC() TPCCConfig {
	return TPCCConfig{
		DB: tpcc.Config{
			Warehouses:               1,
			Districts:                4,
			CustomersPerDistrict:     60,
			Items:                    300,
			InitialOrdersPerDistrict: 30,
			CachePages:               4000,
			Seed:                     3,
		},
		Transactions: 120,
		Concurrency:  1,
		Warmup:       10,
		LogBufferKB:  50,
		Seed:         5,
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(Figure3Config{Processes: 1, SizesKB: []int{1, 8}, WritesPerProcess: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r1 := res.Rows[0]
	// Trail must beat the baseline by a wide margin at 1 KB.
	if r1.Speedup() < 3 {
		t.Errorf("1KB speedup = %.2f, want >= 3", r1.Speedup())
	}
	// Clustered Trail >= sparse Trail (track switches visible).
	if r1.TrailClustered < r1.TrailSparse {
		t.Errorf("clustered %v < sparse %v", r1.TrailClustered, r1.TrailSparse)
	}
	// The advantage shrinks as size grows (transfer dominates).
	if res.Rows[1].Speedup() >= r1.Speedup() {
		t.Errorf("speedup grew with size: %.2f -> %.2f", r1.Speedup(), res.Rows[1].Speedup())
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Error("missing render")
	}
}

func TestFigure3FiveProcesses(t *testing.T) {
	res, err := Figure3(Figure3Config{Processes: 5, SizesKB: []int{1}, WritesPerProcess: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Speedup() < 3 {
		t.Errorf("5-process speedup = %.2f", res.Rows[0].Speedup())
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(32, []int{1, 4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Elapsed time must fall monotonically with batch size, with a large
	// overall spread (paper: ~15x).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Elapsed >= res.Rows[i-1].Elapsed {
			t.Errorf("elapsed did not fall: %v", res.Rows)
		}
	}
	spread := float64(res.Rows[0].Elapsed) / float64(res.Rows[2].Elapsed)
	if spread < 5 {
		t.Errorf("batch 1 vs 32 spread = %.1fx, want > 5x", spread)
	}
	// Record counts track the batching.
	if res.Rows[0].Records != 32 || res.Rows[2].Records > 4 {
		t.Errorf("records: %v", res.Rows)
	}
}

func TestDeltaCalibrationFindsCliff(t *testing.T) {
	res, err := DeltaCalibration([]int{2, 10, 14, 20}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].FullRotation {
		t.Error("delta=2 did not pay a full rotation")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.FullRotation {
		t.Error("large delta still pays a full rotation")
	}
	if res.BestDelta == 0 || res.BestDelta > 20 {
		t.Errorf("best delta = %d, want <= 20 (paper <15)", res.BestDelta)
	}
}

func TestLatencyAnatomy(t *testing.T) {
	res, err := LatencyAnatomy(20)
	if err != nil {
		t.Fatal(err)
	}
	if res.OneSector < time.Millisecond || res.OneSector > 2*time.Millisecond {
		t.Errorf("one-sector write = %v, want ~1.4ms", res.OneSector)
	}
	if res.FourKB <= res.OneSector {
		t.Error("4KB write not slower than 1-sector write")
	}
	if res.Reposition < time.Millisecond || res.Reposition > 3*time.Millisecond {
		t.Errorf("reposition = %v, want ~1.5ms", res.Reposition)
	}
	if res.SectorTransfer < 100*time.Microsecond || res.SectorTransfer > 200*time.Microsecond {
		t.Errorf("sector transfer = %v, want ~0.13ms", res.SectorTransfer)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(smallTPCC())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	trail, ext2, gc := res.Rows[0], res.Rows[1], res.Rows[2]
	if trail.TpmC <= ext2.TpmC {
		t.Errorf("Trail tpmC %.0f <= EXT2 %.0f", trail.TpmC, ext2.TpmC)
	}
	if trail.LogIOTime >= ext2.LogIOTime {
		t.Errorf("Trail log I/O %v >= EXT2 %v", trail.LogIOTime, ext2.LogIOTime)
	}
	if gc.LogIOTime >= ext2.LogIOTime {
		t.Errorf("GC log I/O %v >= EXT2 %v (batching inactive)", gc.LogIOTime, ext2.LogIOTime)
	}
	if trail.AvgResponse >= ext2.AvgResponse {
		t.Errorf("Trail response %v >= EXT2 %v", trail.AvgResponse, ext2.AvgResponse)
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := smallTPCC()
	cfg.Transactions = 150
	res, err := Table3(cfg, []int{4, 40, 160})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].GroupCommits >= res.Rows[i-1].GroupCommits {
			t.Errorf("group commits did not fall with buffer size: %+v", res.Rows)
		}
	}
	// 4 KB buffers with multi-KB transactions: more flushes than the
	// largest buffer by a wide factor.
	if res.Rows[0].GroupCommits < 4*res.Rows[len(res.Rows)-1].GroupCommits {
		t.Errorf("flush spread too small: %+v", res.Rows)
	}
}

func TestTrackUtilizationBounds(t *testing.T) {
	cfg := smallTPCC()
	cfg.Transactions = 150
	res, err := TrackUtilization(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OneBatchUtil <= 0 || row.OneBatchUtil > 1 {
			t.Errorf("conc %d one-batch utilization out of range: %v", row.Concurrency, row.OneBatchUtil)
		}
		if row.MeasuredUtil < 0.25 || row.MeasuredUtil > 0.6 {
			t.Errorf("conc %d measured utilization %v far from the 30%% threshold regime", row.Concurrency, row.MeasuredUtil)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4([]int{16, 48}, 9)
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Rows[0], res.Rows[1]
	if large.Rebuild <= small.Rebuild {
		t.Errorf("rebuild time did not grow with Q: %v vs %v", small.Rebuild, large.Rebuild)
	}
	if large.WriteBack <= small.WriteBack {
		t.Errorf("write-back time did not grow with Q")
	}
	// Write-back dominates: skipping it must be much faster at large Q.
	if large.Total() < large.TotalSkip*2 {
		t.Errorf("full %v vs skip %v: write-back not dominant", large.Total(), large.TotalSkip)
	}
	// Binary search scans a logarithmic number of tracks (35714 usable).
	if small.TracksScanned > 40 {
		t.Errorf("scanned %d tracks; binary search inactive", small.TracksScanned)
	}
}
