package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestClusterSweep(t *testing.T) {
	res, err := Cluster([]int{2, 4}, 24, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Acked == 0 {
			t.Errorf("%d shards: nothing acked", pt.Shards)
		}
		if pt.Failed != 0 {
			t.Errorf("%d shards: %d writes failed on a healthy cluster", pt.Shards, pt.Failed)
		}
		if pt.ReadsFailed != 0 {
			t.Errorf("%d shards: %d reads failed on a healthy cluster", pt.Shards, pt.ReadsFailed)
		}
		if pt.WP99 <= 0 || pt.AckedPerSec <= 0 {
			t.Errorf("%d shards: degenerate point %+v", pt.Shards, pt)
		}
	}
	if !strings.Contains(res.String(), "Cluster scale-out") {
		t.Error("table header missing")
	}
}

func TestClusterKillOneShardExperiment(t *testing.T) {
	res, err := ClusterKillOneShard(ClusterKillConfig{
		Tenants:  32,
		Requests: 800,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d acked slots:\n%s", res.Lost, res)
	}
	if res.Checked == 0 {
		t.Fatal("verification checked nothing")
	}
	if res.RebuildCopies == 0 || res.Failovers == 0 {
		t.Fatalf("failure machinery idle:\n%s", res)
	}
	for i, s := range res.FinalStates {
		if s != "healthy" {
			t.Errorf("shard %d final state %q, want healthy", i, s)
		}
	}
	if res.KilledShardGen != 1 {
		t.Errorf("killed shard generation = %d, want 1", res.KilledShardGen)
	}
	// The blast-radius bound: uninvolved writes' p99 may move while the
	// cluster absorbs the failure, but must stay within an order of
	// magnitude of the healthy tail.
	if res.SurvivorP99Post > 10*res.SurvivorP99Pre {
		t.Errorf("survivor p99 blew up: pre %v post %v", res.SurvivorP99Pre, res.SurvivorP99Post)
	}
	if res.SurvivorP99Post > 500*time.Millisecond {
		t.Errorf("survivor p99 unbounded: %v", res.SurvivorP99Post)
	}
	if !strings.Contains(res.String(), "0 lost") {
		t.Errorf("rendered verdict should report zero loss:\n%s", res)
	}
}
