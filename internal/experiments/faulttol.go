package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/fault"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/raid"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// faultRegion bounds the workload (and, by default, the sampled fault
// locations) so injected latent errors actually land in sectors the workload
// touches.
const faultRegion = 4096

// FaultRow is one system's outcome under an injected fault scenario.
type FaultRow struct {
	System string
	// Writes/Reads are operations attempted; WriteErrors/ReadErrors are the
	// ones surfaced to the client as failures after the system's own
	// retries/redundancy were exhausted.
	Writes, Reads           int
	WriteErrors, ReadErrors int
	// CorruptReads counts reads that "succeeded" but returned wrong bytes —
	// silent data loss, the worst outcome.
	CorruptReads int
	MeanWrite    time.Duration
	// Counters merges the injection plan's trigger counts with the system's
	// own fault-handling telemetry.
	Counters *metrics.Counters
}

// FaultToleranceResult compares how the standard subsystem, Trail, and a
// RAID-5 array ride out the same deterministic fault scenario.
type FaultToleranceResult struct {
	Scenario string
	Rows     []FaultRow
}

// FaultTolerance runs a seeded mixed read/write workload against the three
// systems while the same seeded fault scenario plays out on their drives:
// the standard subsystem and Trail get the plan on their data disk (Trail
// additionally on its log disk, since that is where its writes land), and
// the RAID-5 array gets it on one member device.
//
// Everything — workload addresses, payloads, fault locations, onset times —
// derives from seed via sim.Rand in virtual time, so two runs with the same
// arguments produce byte-identical results.
func FaultTolerance(writes int, seed uint64, cfg fault.Config) (*FaultToleranceResult, error) {
	if writes == 0 {
		writes = 1000
	}
	if cfg.MaxLBA == 0 {
		cfg.MaxLBA = faultRegion
	}
	res := &FaultToleranceResult{Scenario: scenarioString(cfg)}
	for _, system := range []string{"standard", "trail", "raid5"} {
		row, err := faultToleranceRun(system, writes, seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("fault tolerance %s: %w", system, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// faultToleranceRun builds one system with the scenario attached and drives
// the workload against it.
func faultToleranceRun(system string, writes int, seed uint64, cfg fault.Config) (*FaultRow, error) {
	env := sim.NewEnv()
	defer env.Close()
	planRng := sim.NewRand(seed)

	var dev blockdev.Device
	var plans []*fault.Plan
	var sysCounters func() *metrics.Counters
	switch system {
	case "standard":
		d := disk.New(env, disk.WDCaviar())
		plans = append(plans, fault.Attach(d, planRng, cfg))
		sd := stddisk.New(env, d, blockdev.DevID{Major: 3}, sched.LOOK)
		dev = sd
		sysCounters = func() *metrics.Counters {
			c := metrics.NewCounters()
			s := sd.Stats()
			c.Set("stddisk.retries", s.Retries)
			c.Set("stddisk.failures", s.Failures)
			return c
		}
	case "trail":
		lg := disk.New(env, disk.ST41601N())
		if err := trail.Format(lg); err != nil {
			return nil, err
		}
		data := disk.New(env, disk.WDCaviar())
		plans = append(plans,
			fault.Attach(lg, planRng, cfg),
			fault.Attach(data, planRng, cfg))
		drv, err := trail.NewDriver(env, lg, []*disk.Disk{data}, DefaultTrailConfig())
		if err != nil {
			return nil, err
		}
		dev = drv.Dev(0)
		sysCounters = func() *metrics.Counters { return drv.Stats().FaultCounters() }
	case "raid5":
		var devs []blockdev.Device
		for i := 0; i < 4; i++ {
			d := disk.New(env, disk.WDCaviar())
			if i == 0 {
				plans = append(plans, fault.Attach(d, planRng, cfg))
			}
			devs = append(devs, stddisk.New(env, d, blockdev.DevID{Major: 9, Minor: uint8(i)}, sched.LOOK))
		}
		a, err := raid.New(devs, 8)
		if err != nil {
			return nil, err
		}
		dev = raidDevice{a}
		sysCounters = func() *metrics.Counters { return a.Stats().Counters() }
	default:
		return nil, fmt.Errorf("unknown system %q", system)
	}

	row := &FaultRow{System: system}
	lat := metrics.NewSummary()
	rng := sim.NewRand(seed + 1)
	const extent = 8
	slots := int64(faultRegion / extent)
	written := make(map[int64]bool)
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			lba := rng.Int64n(slots) * extent
			row.Writes++
			start := p.Now()
			err := dev.Write(p, lba, extent, payload(lba, extent))
			lat.Add(p.Now().Sub(start))
			if err != nil {
				row.WriteErrors++
			} else {
				written[lba] = true
			}
			// Read back an earlier write every few operations so latent
			// read errors on the data path actually surface.
			if i%4 == 3 {
				rb := rng.Int64n(slots) * extent
				if !written[rb] {
					continue
				}
				row.Reads++
				got, err := dev.Read(p, rb, extent)
				switch {
				case err != nil:
					row.ReadErrors++
				case !bytes.Equal(got, payload(rb, extent)):
					row.CorruptReads++
				}
			}
			p.Sleep(2 * time.Millisecond)
		}
	})
	env.Run()

	row.MeanWrite = lat.Mean()
	row.Counters = metrics.NewCounters()
	for _, plan := range plans {
		row.Counters.Merge(plan.Stats().Counters())
	}
	row.Counters.Merge(sysCounters())
	return row, nil
}

// raidDevice adapts *raid.Array to the subset of blockdev.Device the
// workload uses.
type raidDevice struct{ a *raid.Array }

func (r raidDevice) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	return r.a.Read(p, lba, count)
}

func (r raidDevice) Write(p *sim.Proc, lba int64, count int, data []byte) error {
	return r.a.Write(p, lba, count, data)
}

func (r raidDevice) Sectors() int64     { return r.a.Sectors() }
func (r raidDevice) ID() blockdev.DevID { return blockdev.DevID{Major: 9} }

// payload derives a deterministic sector payload from the LBA so read-backs
// can detect corruption without bookkeeping.
func payload(lba int64, count int) []byte {
	buf := make([]byte, count*geom.SectorSize)
	for s := 0; s < count; s++ {
		b := byte((lba+int64(s))*131 + 7)
		for i := range buf[s*geom.SectorSize : (s+1)*geom.SectorSize] {
			buf[s*geom.SectorSize+i] = b + byte(i)
		}
	}
	return buf
}

// scenarioString renders the scenario compactly for the report header.
func scenarioString(cfg fault.Config) string {
	var terms []string
	add := func(k string, v interface{}) { terms = append(terms, fmt.Sprintf("%s=%v", k, v)) }
	if cfg.LatentReadErrors > 0 {
		add("latent", cfg.LatentReadErrors)
	}
	if cfg.LatentWriteErrors > 0 {
		add("wlatent", cfg.LatentWriteErrors)
	}
	if cfg.LatentOnsetWindow > 0 {
		add("onset", cfg.LatentOnsetWindow)
	}
	if cfg.Timeouts > 0 {
		add("timeout", cfg.Timeouts)
	}
	if cfg.GrowingRegion > 0 {
		add("grow", cfg.GrowingRegion)
	}
	if cfg.FailAt > 0 {
		add("failat", cfg.FailAt)
	}
	add("maxlba", cfg.MaxLBA)
	return strings.Join(terms, ",")
}

// String renders the comparison.
func (r *FaultToleranceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tolerance under scenario %s\n", r.Scenario)
	fmt.Fprintf(&b, "%-10s %7s %7s %7s %7s %8s %13s\n",
		"system", "writes", "w-errs", "reads", "r-errs", "corrupt", "mean write")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %7d %7d %7d %7d %8d %10s ms\n",
			row.System, row.Writes, row.WriteErrors, row.Reads, row.ReadErrors,
			row.CorruptReads, fmtMS(row.MeanWrite))
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "[%s]\n%s\n", row.System, row.Counters)
	}
	return b.String()
}
