package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/metrics"
	"tracklog/internal/workload"
)

// Fig3Row is one write-size point of Figure 3: mean synchronous write
// latency for Trail and the standard (Linux) subsystem in sparse and
// clustered mode.
type Fig3Row struct {
	SizeKB                      int
	TrailSparse, TrailClustered time.Duration
	LinuxSparse, LinuxClustered time.Duration
}

// Speedup returns Trail's best-case advantage at this size (the paper
// headlines "up to 11.85 times faster").
func (r Fig3Row) Speedup() float64 {
	if r.TrailSparse == 0 {
		return 0
	}
	return float64(r.LinuxClustered) / float64(r.TrailSparse)
}

// Fig3Result is one panel of Figure 3 (a: one process, b: five processes).
type Fig3Result struct {
	Processes int
	Rows      []Fig3Row
}

// Figure3Config tunes the experiment.
type Figure3Config struct {
	// Processes is the multiprogramming level (panel a: 1, panel b: 5).
	Processes int
	// SizesKB are the request sizes to sweep (default 1..32 KB).
	SizesKB []int
	// WritesPerProcess per point (default 200).
	WritesPerProcess int
	// Seed drives target selection.
	Seed uint64
}

func (c Figure3Config) withDefaults() Figure3Config {
	if c.Processes == 0 {
		c.Processes = 1
	}
	if len(c.SizesKB) == 0 {
		c.SizesKB = []int{1, 2, 4, 8, 16, 32}
	}
	if c.WritesPerProcess == 0 {
		c.WritesPerProcess = 200
	}
	return c
}

// Figure3 reproduces one panel of Figure 3: average synchronous write
// latency versus request size, for sparse and clustered arrivals, on Trail
// and on the standard disk subsystem.
func Figure3(cfg Figure3Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig3Result{Processes: cfg.Processes}
	for _, sizeKB := range cfg.SizesKB {
		row := Fig3Row{SizeKB: sizeKB}
		for _, mode := range []workload.Mode{workload.Sparse, workload.Clustered} {
			wcfg := workload.SyncWriteConfig{
				Mode:             mode,
				WriteSize:        sizeKB * 1024,
				Processes:        cfg.Processes,
				WritesPerProcess: cfg.WritesPerProcess,
				Seed:             cfg.Seed + uint64(sizeKB),
			}
			// Trail.
			tr, err := newTrailRig(1, DefaultTrailConfig())
			if err != nil {
				return nil, err
			}
			tres, err := workload.RunSyncWrites(tr.env, tr.drv.Dev(0), wcfg)
			tr.env.Close()
			if err != nil {
				return nil, fmt.Errorf("fig3 trail %dKB %v: %w", sizeKB, mode, err)
			}
			// Linux baseline.
			lx := newLinuxRig(1)
			lres, err := workload.RunSyncWrites(lx.env, lx.devs[0], wcfg)
			lx.env.Close()
			if err != nil {
				return nil, fmt.Errorf("fig3 linux %dKB %v: %w", sizeKB, mode, err)
			}
			if mode == workload.Sparse {
				row.TrailSparse = tres.Latency.Mean()
				row.LinuxSparse = lres.Latency.Mean()
			} else {
				row.TrailClustered = tres.Latency.Mean()
				row.LinuxClustered = lres.Latency.Mean()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the panel as a table in milliseconds.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: avg sync write latency (ms), %d process(es)\n", r.Processes)
	fmt.Fprintf(&b, "%8s %14s %14s %14s %14s %10s\n",
		"size KB", "Trail/sparse", "Trail/clust", "Linux/sparse", "Linux/clust", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14s %14s %14s %14s %9.2fx\n",
			row.SizeKB, fmtMS(row.TrailSparse), fmtMS(row.TrailClustered),
			fmtMS(row.LinuxSparse), fmtMS(row.LinuxClustered), row.Speedup())
	}
	return b.String()
}

// Plot renders the panel as an ASCII chart (the paper's figure form).
func (r *Fig3Result) Plot() string {
	mk := func(name string, pick func(Fig3Row) time.Duration) metrics.Series {
		s := metrics.Series{Name: name}
		for _, row := range r.Rows {
			s.Points = append(s.Points, [2]float64{float64(row.SizeKB), pick(row).Seconds() * 1000})
		}
		return s
	}
	return metrics.AsciiPlot(
		fmt.Sprintf("Figure 3 (%d process(es)): sync write latency", r.Processes),
		"write size KB", "ms",
		[]metrics.Series{
			mk("Trail sparse", func(r Fig3Row) time.Duration { return r.TrailSparse }),
			mk("Trail clustered", func(r Fig3Row) time.Duration { return r.TrailClustered }),
			mk("Linux sparse", func(r Fig3Row) time.Duration { return r.LinuxSparse }),
			mk("Linux clustered", func(r Fig3Row) time.Duration { return r.LinuxClustered }),
		}, 64, 16)
}
