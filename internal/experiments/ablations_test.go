package experiments

import (
	"testing"

	"tracklog/internal/sched"
)

func TestThresholdSweepTradeoff(t *testing.T) {
	res, err := ThresholdSweep([]float64{0.05, 0.50}, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Rows[0], res.Rows[1]
	// Low threshold repositions far more often and wastes space.
	if lo.Repositions <= hi.Repositions {
		t.Errorf("repositions: 5%%=%d vs 50%%=%d", lo.Repositions, hi.Repositions)
	}
	if lo.AvgTrackUtil >= hi.AvgTrackUtil {
		t.Errorf("track util: 5%%=%.2f vs 50%%=%.2f", lo.AvgTrackUtil, hi.AvgTrackUtil)
	}
}

func TestReadPriorityHelpsReads(t *testing.T) {
	res, err := ReadPriorityAblation(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prio, plain ReadPriorityRow
	for _, row := range res.Rows {
		if row.Policy == sched.ReadPriorityLOOK {
			prio = row
		} else {
			plain = row
		}
	}
	if prio.MeanReadTime >= plain.MeanReadTime {
		t.Errorf("read priority mean %v >= plain %v", prio.MeanReadTime, plain.MeanReadTime)
	}
}

func TestMultiLogAblationHidesRepositioning(t *testing.T) {
	res, err := MultiLogAblation([]int{1, 2}, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	one, two := res.Rows[0], res.Rows[1]
	if two.Elapsed >= one.Elapsed {
		t.Errorf("2 log disks elapsed %v >= 1 log disk %v", two.Elapsed, one.Elapsed)
	}
}

func TestRecoveryOptimizationsAblation(t *testing.T) {
	res, err := RecoveryOptimizationsAblation(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NoBinarySearch.LocateTime <= res.Baseline.LocateTime*10 {
		t.Errorf("sequential scan %v not vastly slower than binary search %v",
			res.NoBinarySearch.LocateTime, res.Baseline.LocateTime)
	}
	if res.NoLogHead.RecordsFound < res.Baseline.RecordsFound {
		t.Errorf("unbounded walk found fewer records (%d) than bounded (%d)",
			res.NoLogHead.RecordsFound, res.Baseline.RecordsFound)
	}
	if res.NoBinarySearch.RecordsFound != res.Baseline.RecordsFound {
		t.Errorf("scan strategies disagree on records: %d vs %d",
			res.NoBinarySearch.RecordsFound, res.Baseline.RecordsFound)
	}
}
