// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): synchronous write latency (Figure 3), batched writes
// (Table 1), TPC-C transaction processing (Tables 2 and 3, the §5.2
// track-utilization numbers), crash recovery (Figure 4), and the §3.1 delta
// calibration. Each experiment builds the paper's hardware configuration —
// an ST41601N log disk and WD Caviar data disks on a fresh virtual-time
// environment — runs the workload, and returns typed rows that render as
// the paper's tables.
package experiments

import (
	"fmt"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// trailRig is the paper's Trail hardware: one ST41601N log disk and n WD
// Caviar data disks behind the Trail driver.
type trailRig struct {
	env  *sim.Env
	log  *disk.Disk
	data []*disk.Disk
	drv  *trail.Driver
}

func newTrailRig(nData int, cfg trail.Config) (*trailRig, error) {
	env := sim.NewEnv()
	log := disk.New(env, disk.ST41601N())
	if err := trail.Format(log); err != nil {
		return nil, err
	}
	var data []*disk.Disk
	for i := 0; i < nData; i++ {
		data = append(data, disk.New(env, disk.WDCaviar()))
	}
	drv, err := trail.NewDriver(env, log, data, cfg)
	if err != nil {
		return nil, err
	}
	return &trailRig{env: env, log: log, data: data, drv: drv}, nil
}

// linuxRig is the paper's baseline: WD Caviar data disks behind a LOOK
// elevator, writes in place.
type linuxRig struct {
	env  *sim.Env
	data []*disk.Disk
	devs []*stddisk.Device
}

func newLinuxRig(nData int) *linuxRig {
	env := sim.NewEnv()
	r := &linuxRig{env: env}
	for i := 0; i < nData; i++ {
		d := disk.New(env, disk.WDCaviar())
		r.data = append(r.data, d)
		r.devs = append(r.devs, stddisk.New(env, d, blockdev.DevID{Major: 3, Minor: uint8(i)}, sched.LOOK))
	}
	return r
}

// DefaultTrailConfig returns the paper's Trail configuration (30% track
// utilization threshold, 32-sector batches, read-priority data disks).
func DefaultTrailConfig() trail.Config { return trail.Default() }

// fmtMS renders a duration in milliseconds with two decimals.
func fmtMS(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1000)
}
