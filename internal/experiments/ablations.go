package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
	"tracklog/internal/workload"
)

// ThresholdRow is one point of the track-utilization-threshold sweep.
type ThresholdRow struct {
	Threshold    float64
	MeanLatency  time.Duration
	Repositions  int64
	AvgTrackUtil float64
}

// ThresholdResult sweeps the 30% knob of §4.2.
type ThresholdResult struct {
	Rows []ThresholdRow
}

// ThresholdSweep measures the latency/space trade-off behind the paper's
// fixed 30% track utilization threshold: low thresholds reposition after
// nearly every record (latency pressure under clustered writes, poor space
// use); high thresholds pack tracks but risk rotational waits for free runs.
func ThresholdSweep(thresholds []float64, writes int, seed uint64) (*ThresholdResult, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.05, 0.15, 0.30, 0.50, 0.80}
	}
	if writes == 0 {
		writes = 200
	}
	res := &ThresholdResult{}
	for _, th := range thresholds {
		cfg := DefaultTrailConfig()
		cfg.UtilizationThreshold = th
		rig, err := newTrailRig(1, cfg)
		if err != nil {
			return nil, err
		}
		wres, err := workload.RunSyncWrites(rig.env, rig.drv.Dev(0), workload.SyncWriteConfig{
			Mode:             workload.Clustered,
			WriteSize:        1024,
			WritesPerProcess: writes,
			Seed:             seed,
		})
		if err != nil {
			rig.env.Close()
			return nil, fmt.Errorf("threshold %.2f: %w", th, err)
		}
		s := rig.drv.Stats()
		rig.env.Close()
		res.Rows = append(res.Rows, ThresholdRow{
			Threshold:    th,
			MeanLatency:  wres.Latency.Mean(),
			Repositions:  s.Repositions,
			AvgTrackUtil: s.AvgTrackUtilization(),
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *ThresholdResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: track utilization threshold (clustered 1KB writes)\n")
	fmt.Fprintf(&b, "%10s %12s %13s %12s\n", "threshold", "mean ms", "repositions", "track util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9.0f%% %12s %13d %11.1f%%\n",
			100*row.Threshold, fmtMS(row.MeanLatency), row.Repositions, 100*row.AvgTrackUtil)
	}
	return b.String()
}

// ReadPriorityRow compares read latency with and without the §4.3 priority.
type ReadPriorityRow struct {
	Policy       sched.Policy
	MeanReadTime time.Duration
}

// ReadPriorityResult is the §4.3 ablation.
type ReadPriorityResult struct {
	Rows []ReadPriorityRow
}

// ReadPriorityAblation measures data-disk read latency while Trail's
// write-back stream competes for the spindle, with reads prioritized
// (paper) versus a plain elevator.
func ReadPriorityAblation(reads int, seed uint64) (*ReadPriorityResult, error) {
	if reads == 0 {
		reads = 100
	}
	res := &ReadPriorityResult{}
	for _, policy := range []sched.Policy{sched.ReadPriorityLOOK, sched.LOOK} {
		cfg := DefaultTrailConfig()
		cfg.DataPolicy = policy
		rig, err := newTrailRig(1, cfg)
		if err != nil {
			return nil, err
		}
		dev := rig.drv.Dev(0)
		rng := sim.NewRand(seed)
		lat := metrics.NewSummary()

		// Writer: a continuous stream of staged writes keeps the
		// write-back path busy on the data disk.
		writing := true
		rig.env.Go("writer", func(p *sim.Proc) {
			for writing {
				lba := rng.Int64n(dev.Sectors()/8) * 8
				if err := dev.Write(p, lba, 8, make([]byte, 8*geom.SectorSize)); err != nil {
					panic(err)
				}
				p.Sleep(2 * time.Millisecond)
			}
		})
		// Reader: cold reads that must reach the data disk.
		rig.env.Go("reader", func(p *sim.Proc) {
			p.Sleep(50 * time.Millisecond) // let the write-back queue build
			for i := 0; i < reads; i++ {
				lba := (rng.Int64n(dev.Sectors()/16) + dev.Sectors()/16) &^ 7
				start := p.Now()
				if _, err := dev.Read(p, lba, 8); err != nil {
					panic(err)
				}
				lat.Add(p.Now().Sub(start))
				p.Sleep(3 * time.Millisecond)
			}
			writing = false
		})
		deadline := sim.Time(60 * time.Second)
		for rig.env.Now() < deadline && lat.Count() < int64(reads) {
			rig.env.RunUntil(rig.env.Now().Add(100 * time.Millisecond))
		}
		rig.env.Close()
		if lat.Count() < int64(reads) {
			return nil, fmt.Errorf("read-priority ablation: only %d of %d reads completed", lat.Count(), reads)
		}
		res.Rows = append(res.Rows, ReadPriorityRow{Policy: policy, MeanReadTime: lat.Mean()})
	}
	return res, nil
}

// String renders the ablation.
func (r *ReadPriorityResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: data disk read priority under write-back load\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%22s: mean read %s ms\n", row.Policy, fmtMS(row.MeanReadTime))
	}
	return b.String()
}

// MultiLogRow is one point of the §5.1 multi-log-disk extension.
type MultiLogRow struct {
	LogDisks    int
	MeanLatency time.Duration
	Elapsed     time.Duration
}

// MultiLogResult measures the paper's "final optimization".
type MultiLogResult struct {
	Rows []MultiLogRow
}

// MultiLogAblation measures clustered synchronous write performance as log
// disks are added: with two or more, repositioning on one disk is hidden
// behind writes to another ("it is possible to employ multiple log disks to
// completely hide the disk re-positioning overhead", §5.1).
func MultiLogAblation(counts []int, writes int, seed uint64) (*MultiLogResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 3}
	}
	if writes == 0 {
		writes = 200
	}
	res := &MultiLogResult{}
	for _, n := range counts {
		env := sim.NewEnv()
		var logs []*disk.Disk
		for i := 0; i < n; i++ {
			lg := disk.New(env, disk.ST41601N())
			if err := trail.Format(lg); err != nil {
				env.Close()
				return nil, err
			}
			logs = append(logs, lg)
		}
		data := disk.New(env, disk.WDCaviar())
		cfg := DefaultTrailConfig()
		// Aggressive threshold maximizes repositioning, the overhead under
		// study.
		cfg.UtilizationThreshold = 0.05
		drv, err := trail.NewDriverMulti(env, logs, []*disk.Disk{data}, cfg)
		if err != nil {
			env.Close()
			return nil, err
		}
		wres, err := workload.RunSyncWrites(env, drv.Dev(0), workload.SyncWriteConfig{
			Mode:             workload.Clustered,
			WriteSize:        2048,
			WritesPerProcess: writes,
			Seed:             seed,
		})
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("multi-log n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, MultiLogRow{
			LogDisks:    n,
			MeanLatency: wres.Latency.Mean(),
			Elapsed:     wres.Elapsed,
		})
	}
	return res, nil
}

// String renders the ablation.
func (r *MultiLogResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: multiple log disks (section 5.1 final optimization)\n")
	fmt.Fprintf(&b, "%10s %12s %14s\n", "log disks", "mean ms", "elapsed ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %12s %14s\n", row.LogDisks, fmtMS(row.MeanLatency), fmtMS(row.Elapsed))
	}
	return b.String()
}

// RecoveryAblationResult compares recovery with each §3.3 optimization
// disabled.
type RecoveryAblationResult struct {
	// Baseline has both optimizations on.
	Baseline *trail.RecoverReport
	// NoBinarySearch scans every track to locate the youngest record.
	NoBinarySearch *trail.RecoverReport
	// NoLogHead walks the full record chain to the epoch start.
	NoLogHead *trail.RecoverReport
}

// RecoveryOptimizationsAblation builds identical crash states and recovers
// each with one of the paper's two recovery optimizations disabled.
func RecoveryOptimizationsAblation(q int, seed uint64) (*RecoveryAblationResult, error) {
	if q == 0 {
		q = 64
	}
	run := func(opts trail.RecoverOptions) (*trail.RecoverReport, error) {
		opts.SkipWriteBack = true // isolate locate+rebuild
		return crashWithBacklog(q, seed, opts, nil)
	}
	base, err := run(trail.RecoverOptions{})
	if err != nil {
		return nil, err
	}
	noBin, err := run(trail.RecoverOptions{SequentialScan: true})
	if err != nil {
		return nil, err
	}
	noHead, err := run(trail.RecoverOptions{IgnoreLogHead: true})
	if err != nil {
		return nil, err
	}
	return &RecoveryAblationResult{Baseline: base, NoBinarySearch: noBin, NoLogHead: noHead}, nil
}

// String renders the ablation.
func (r *RecoveryAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: recovery optimizations (write-back skipped)\n")
	row := func(name string, rep *trail.RecoverReport) {
		fmt.Fprintf(&b, "%-22s locate %10s ms (%6d tracks)  rebuild %8s ms  records %d\n",
			name, fmtMS(rep.LocateTime), rep.TracksScanned, fmtMS(rep.RebuildTime), rep.RecordsFound)
	}
	row("both optimizations", r.Baseline)
	row("sequential scan", r.NoBinarySearch)
	row("unbounded walk", r.NoLogHead)
	return b.String()
}

var _ = blockdev.DevID{}
var _ = stddisk.New
