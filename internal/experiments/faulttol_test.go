package experiments

import (
	"testing"

	"tracklog/internal/fault"
)

// TestFaultToleranceDeterministic is the acceptance scenario: the seeded
// ISSUE workload (3 latent errors + 1 timeout over 1000 writes) must render
// byte-identical metrics across two runs, and the RAID-5 array must hide
// the single-device damage completely.
func TestFaultToleranceDeterministic(t *testing.T) {
	cfg := fault.Config{LatentReadErrors: 3, Timeouts: 1}
	run := func() *FaultToleranceResult {
		res, err := FaultTolerance(1000, 42, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if a, b := first.String(), second.String(); a != b {
		t.Errorf("two seeded runs differ:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}

	var fired int64
	for _, row := range first.Rows {
		fired += row.Counters.Get("fault.media_errors") + row.Counters.Get("fault.timeouts")
		if row.WriteErrors != 0 {
			t.Errorf("%s: %d writes failed under a retryable scenario", row.System, row.WriteErrors)
		}
		if row.CorruptReads != 0 {
			t.Errorf("%s: %d reads returned corrupt data", row.System, row.CorruptReads)
		}
		if row.System == "raid5" && row.ReadErrors != 0 {
			t.Errorf("raid5: %d read errors despite parity redundancy", row.ReadErrors)
		}
	}
	if fired == 0 {
		t.Error("no injected fault ever triggered; scenario is vacuous")
	}
}
