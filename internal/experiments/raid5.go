package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/geom"
	"tracklog/internal/metrics"
	"tracklog/internal/raid"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// RAID5Row is one configuration of the small-write experiment.
type RAID5Row struct {
	System       string
	MeanWrite    time.Duration
	SmallWrites  int64
	DeviceReads  int64
	DeviceWrites int64
}

// RAID5Result measures the paper's §6 future-work claim: track-based
// logging solves the RAID-5 small-write problem, because the data and
// parity writes of the read-modify-write cycle become fast log appends.
type RAID5Result struct {
	Rows []RAID5Row
}

// RAID5SmallWrites runs random small writes against a 4-disk RAID-5 built
// over the standard subsystem and over Trail data devices.
func RAID5SmallWrites(writes int, seed uint64) (*RAID5Result, error) {
	if writes == 0 {
		writes = 100
	}
	res := &RAID5Result{}
	for _, useTrail := range []bool{false, true} {
		env := sim.NewEnv()
		const nDevs = 4
		var devs []blockdev.Device
		name := "standard"
		if useTrail {
			name = "trail"
			lg := disk.New(env, disk.ST41601N())
			if err := trail.Format(lg); err != nil {
				env.Close()
				return nil, err
			}
			var raws []*disk.Disk
			for i := 0; i < nDevs; i++ {
				raws = append(raws, disk.New(env, disk.WDCaviar()))
			}
			drv, err := trail.NewDriver(env, lg, raws, DefaultTrailConfig())
			if err != nil {
				env.Close()
				return nil, err
			}
			for i := 0; i < nDevs; i++ {
				devs = append(devs, drv.Dev(i))
			}
		} else {
			for i := 0; i < nDevs; i++ {
				d := disk.New(env, disk.WDCaviar())
				devs = append(devs, stddisk.New(env, d, blockdev.DevID{Major: 9, Minor: uint8(i)}, sched.LOOK))
			}
		}
		a, err := raid.New(devs, 8)
		if err != nil {
			env.Close()
			return nil, err
		}
		lat := metrics.NewSummary()
		rng := sim.NewRand(seed)
		var ferr error
		env.Go("writer", func(p *sim.Proc) {
			region := a.Sectors() / 64
			for i := 0; i < writes; i++ {
				lba := rng.Int64n(region/8) * 8 // one chunk: a "small" write
				start := p.Now()
				if err := a.Write(p, lba, 8, make([]byte, 8*geom.SectorSize)); err != nil {
					ferr = err
					return
				}
				lat.Add(p.Now().Sub(start))
				p.Sleep(2 * time.Millisecond)
			}
		})
		deadline := sim.Time(10 * time.Minute)
		for env.Now() < deadline && lat.Count() < int64(writes) && ferr == nil {
			env.RunUntil(env.Now().Add(500 * time.Millisecond))
		}
		s := a.Stats()
		env.Close()
		if ferr != nil {
			return nil, fmt.Errorf("raid5 %s: %w", name, ferr)
		}
		if lat.Count() < int64(writes) {
			return nil, fmt.Errorf("raid5 %s: only %d of %d writes completed", name, lat.Count(), writes)
		}
		res.Rows = append(res.Rows, RAID5Row{
			System:       name,
			MeanWrite:    lat.Mean(),
			SmallWrites:  s.SmallWrites,
			DeviceReads:  s.DeviceReads,
			DeviceWrites: s.DeviceWrites,
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *RAID5Result) String() string {
	var b strings.Builder
	b.WriteString("Extension (section 6): RAID-5 small writes, standard vs Trail-backed\n")
	fmt.Fprintf(&b, "%-10s %14s %13s %13s %14s\n", "system", "mean write", "small writes", "dev reads", "dev writes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %11s ms %13d %13d %14d\n",
			row.System, fmtMS(row.MeanWrite), row.SmallWrites, row.DeviceReads, row.DeviceWrites)
	}
	if len(r.Rows) == 2 && r.Rows[1].MeanWrite > 0 {
		fmt.Fprintf(&b, "Trail speedup: %.1fx (the 2 writes of the read-modify-write become log appends)\n",
			float64(r.Rows[0].MeanWrite)/float64(r.Rows[1].MeanWrite))
	}
	return b.String()
}
