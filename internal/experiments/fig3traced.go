package experiments

import (
	"fmt"
	"strings"
	"time"

	"tracklog/internal/span"
	"tracklog/internal/trace"
	"tracklog/internal/workload"
)

// Figure 3, traced: the same sync-write latency sweep as Figure3, but with a
// tracer and a span recorder attached to the Trail rig, so every point also
// reports the head-position prediction audit — misprediction rate and the
// true rotational wait the predictions bought — and the span-attributed
// decomposition of client latency into queue, mechanical, rotational-wait,
// and transfer time. This ties the paper's headline latency numbers
// (Figure 3) directly to its mechanism (§3.1): Trail is fast exactly when
// the audit shows sub-sector-scale rotational waits, and any regression in
// the predictor shows up here as a rising miss rate before it shows up as
// latency.

// Fig3TracedRow is one write-size point of the traced sweep (sparse mode,
// Trail only — the audit has no meaning for the in-place baseline).
type Fig3TracedRow struct {
	SizeKB int
	// MeanLatency is the mean client-visible sync write latency.
	MeanLatency time.Duration
	// Predictions/MissRate come from the prediction audit.
	Predictions int64
	MissRate    float64
	// MeanRotWait is the mean true rotational wait of audited log writes
	// (ground truth from the simulator, invisible to the driver).
	MeanRotWait time.Duration
	// Events is the number of trace events the run emitted (after ring
	// eviction), a coarse activity measure.
	Events int
	// The span-attributed mean per-write phase breakdown. Queue covers
	// scheduler queueing, batching delay, log-track switches, and retries;
	// Mech is the mechanical fixed costs (turnaround, overhead, seek,
	// head switch, settle); SpanRotWait is attributed rotational latency
	// (it independently confirms MeanRotWait); Xfer is media transfer.
	// Queue+Mech+SpanRotWait+Xfer == MeanLatency exactly: the span layer
	// attributes every nanosecond of client-visible latency.
	Queue, Mech, SpanRotWait, Xfer time.Duration
}

// Fig3TracedResult is the traced sweep.
type Fig3TracedResult struct {
	Processes int
	Rows      []Fig3TracedRow
}

// Figure3Traced runs the sparse-mode Trail side of Figure 3 with tracing
// attached and returns per-size latency plus prediction-audit figures.
func Figure3Traced(cfg Figure3Config) (*Fig3TracedResult, error) {
	cfg = cfg.withDefaults()
	res := &Fig3TracedResult{Processes: cfg.Processes}
	for _, sizeKB := range cfg.SizesKB {
		tr, err := newTrailRig(1, DefaultTrailConfig())
		if err != nil {
			return nil, err
		}
		tracer := trace.New(0)
		tr.env.SetTracer(tracer)
		tr.drv.SetTracer(tracer)
		rec := span.NewRecorder(0)
		tr.drv.SetRecorder(rec)
		tres, err := workload.RunSyncWrites(tr.env, tr.drv.Dev(0), workload.SyncWriteConfig{
			Mode:             workload.Sparse,
			WriteSize:        sizeKB * 1024,
			Processes:        cfg.Processes,
			WritesPerProcess: cfg.WritesPerProcess,
			Seed:             cfg.Seed + uint64(sizeKB),
		})
		tr.env.Close()
		if err != nil {
			return nil, fmt.Errorf("fig3traced %dKB: %w", sizeKB, err)
		}
		audit := tracer.Audit()
		row := Fig3TracedRow{
			SizeKB:      sizeKB,
			MeanLatency: tres.Latency.Mean(),
			Predictions: audit.Predictions,
			MissRate:    audit.MissRate(),
			MeanRotWait: audit.RotWait.Mean(),
			Events:      tracer.Len(),
		}
		var n int64
		var queue, mech, rot, xfer int64
		for _, rq := range rec.Requests() {
			if rq.Kind != span.KWrite {
				continue
			}
			n++
			queue += rq.PhaseTotal(span.PQueue) + rq.PhaseTotal(span.PTrackSwitch) +
				rq.PhaseTotal(span.PRetry)
			mech += rq.PhaseTotal(span.PTurnaround) + rq.PhaseTotal(span.POverhead) +
				rq.PhaseTotal(span.PSeek) + rq.PhaseTotal(span.PHeadSwitch) +
				rq.PhaseTotal(span.PSettle)
			rot += rq.PhaseTotal(span.PRotWait)
			xfer += rq.PhaseTotal(span.PTransfer)
		}
		if n > 0 {
			row.Queue = time.Duration(queue / n)
			row.Mech = time.Duration(mech / n)
			row.SpanRotWait = time.Duration(rot / n)
			row.Xfer = time.Duration(xfer / n)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the traced sweep as a table.
func (r *Fig3TracedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (traced): Trail sparse latency, prediction audit, and span breakdown, %d process(es)\n", r.Processes)
	fmt.Fprintf(&b, "%8s %12s %12s %10s %14s | %9s %9s %9s %9s\n",
		"size KB", "latency ms", "predictions", "miss %", "rot wait ms",
		"queue", "mech", "rotwait", "xfer")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12s %12d %10.2f %14s | %9s %9s %9s %9s\n",
			row.SizeKB, fmtMS(row.MeanLatency), row.Predictions,
			100*row.MissRate, fmtMS(row.MeanRotWait),
			fmtMS(row.Queue), fmtMS(row.Mech), fmtMS(row.SpanRotWait), fmtMS(row.Xfer))
	}
	b.WriteString("(span columns are mean per-write attributed time; they sum to the latency column)\n")
	return b.String()
}
