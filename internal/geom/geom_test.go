package geom

import (
	"testing"
	"testing/quick"
)

func testGeom() Geometry {
	return Geometry{
		Cylinders: 100,
		Heads:     4,
		Zones: []Zone{
			{StartCyl: 0, EndCyl: 49, SPT: 60},
			{StartCyl: 50, EndCyl: 99, SPT: 40},
		},
		TrackSkew: 5,
		CylSkew:   8,
	}
}

func TestValidate(t *testing.T) {
	g := testGeom()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Geometry)
	}{
		{"no zones", func(g *Geometry) { g.Zones = nil }},
		{"gap between zones", func(g *Geometry) { g.Zones[1].StartCyl = 51 }},
		{"zones short of cylinders", func(g *Geometry) { g.Zones[1].EndCyl = 98 }},
		{"zero SPT", func(g *Geometry) { g.Zones[0].SPT = 0 }},
		{"zero heads", func(g *Geometry) { g.Heads = 0 }},
		{"negative skew", func(g *Geometry) { g.TrackSkew = -1 }},
		{"inverted zone", func(g *Geometry) { g.Zones[0].EndCyl = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := testGeom()
			tc.mut(&bad)
			if err := bad.Validate(); err == nil {
				t.Error("invalid geometry accepted")
			}
		})
	}
}

func TestTotalSectors(t *testing.T) {
	g := testGeom()
	want := int64(50*4*60 + 50*4*40)
	if got := g.TotalSectors(); got != want {
		t.Errorf("TotalSectors = %d, want %d", got, want)
	}
	if got := g.Capacity(); got != want*SectorSize {
		t.Errorf("Capacity = %d, want %d", got, want*SectorSize)
	}
	if got := g.TotalTracks(); got != 400 {
		t.Errorf("TotalTracks = %d, want 400", got)
	}
}

func TestLBARoundTrip(t *testing.T) {
	g := testGeom()
	f := func(raw uint32) bool {
		lba := int64(raw) % g.TotalSectors()
		a := g.ToCHS(lba)
		return g.ToLBA(a) == lba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCHSRoundTrip(t *testing.T) {
	g := testGeom()
	for cyl := 0; cyl < g.Cylinders; cyl += 7 {
		for head := 0; head < g.Heads; head++ {
			for _, sector := range []int{0, 1, g.SPTAt(cyl) - 1} {
				a := CHS{Cyl: cyl, Head: head, Sector: sector}
				got := g.ToCHS(g.ToLBA(a))
				if got != a {
					t.Fatalf("round trip %v -> %v", a, got)
				}
			}
		}
	}
}

func TestLBAMonotonicAcrossZoneBoundary(t *testing.T) {
	g := testGeom()
	// Last LBA of zone 0 and first of zone 1 must be consecutive.
	last0 := g.ToLBA(CHS{Cyl: 49, Head: 3, Sector: 59})
	first1 := g.ToLBA(CHS{Cyl: 50, Head: 0, Sector: 0})
	if first1 != last0+1 {
		t.Errorf("zone boundary LBAs %d then %d, want consecutive", last0, first1)
	}
}

func TestSPTAt(t *testing.T) {
	g := testGeom()
	if g.SPTAt(0) != 60 || g.SPTAt(49) != 60 || g.SPTAt(50) != 40 || g.SPTAt(99) != 40 {
		t.Error("SPTAt returned wrong zone SPT")
	}
}

func TestTrackIndexRoundTrip(t *testing.T) {
	g := testGeom()
	for track := 0; track < g.TotalTracks(); track += 13 {
		cyl, head := g.TrackOf(track)
		if g.TrackIndex(cyl, head) != track {
			t.Fatalf("track %d -> (%d,%d) -> %d", track, cyl, head, g.TrackIndex(cyl, head))
		}
	}
	if g.NextTrack(g.TotalTracks()-1) != 0 {
		t.Error("NextTrack does not wrap")
	}
}

func TestTrackStartLBA(t *testing.T) {
	g := testGeom()
	if got := g.TrackStartLBA(0, 0); got != 0 {
		t.Errorf("first track starts at %d", got)
	}
	if got := g.TrackStartLBA(0, 1); got != 60 {
		t.Errorf("track (0,1) starts at %d, want 60", got)
	}
	if got := g.TrackStartLBA(50, 0); got != int64(50*4*60) {
		t.Errorf("track (50,0) starts at %d, want %d", got, 50*4*60)
	}
}

func TestSectorAngleRange(t *testing.T) {
	g := testGeom()
	f := func(raw uint32) bool {
		lba := int64(raw) % g.TotalSectors()
		ang := g.SectorAngle(g.ToCHS(lba))
		return ang >= 0 && ang < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSectorAngleSkewShiftsOrigin(t *testing.T) {
	g := testGeom()
	// With track skew 5 and SPT 60, sector 0 of head 1 sits 5 slots after
	// the angular origin.
	a0 := g.SectorAngle(CHS{Cyl: 0, Head: 0, Sector: 0})
	a1 := g.SectorAngle(CHS{Cyl: 0, Head: 1, Sector: 0})
	if a0 != 0 {
		t.Errorf("sector 0 head 0 at angle %v, want 0", a0)
	}
	if want := 5.0 / 60.0; a1 != want {
		t.Errorf("sector 0 head 1 at angle %v, want %v", a1, want)
	}
}

func TestClosestSectorOnTrack(t *testing.T) {
	g := Uniform(10, 2, 60)
	// No skew: at angle just past sector 9's start, the next sector is 10.
	s := g.ClosestSectorOnTrack(0, 0, 9.0/60.0, 0)
	if s != 10 {
		t.Errorf("closest sector = %d, want 10", s)
	}
	// Margin shifts the landing point.
	s = g.ClosestSectorOnTrack(0, 0, 9.0/60.0, 3)
	if s != 13 {
		t.Errorf("closest sector with margin = %d, want 13", s)
	}
	// Wraps past the end of the track.
	s = g.ClosestSectorOnTrack(0, 0, 59.5/60.0, 0)
	if s != 0 {
		t.Errorf("closest sector near wrap = %d, want 0", s)
	}
}

func TestClosestSectorIsAfterAngle(t *testing.T) {
	g := testGeom()
	f := func(rawCyl uint8, rawHead uint8, rawAngle uint16) bool {
		cyl := int(rawCyl) % g.Cylinders
		head := int(rawHead) % g.Heads
		angle := float64(rawAngle) / 65536.0
		s := g.ClosestSectorOnTrack(cyl, head, angle, 0)
		spt := g.SPTAt(cyl)
		if s < 0 || s >= spt {
			return false
		}
		// The chosen sector's start must lie within one sector slot after
		// the probe angle (modulo a revolution).
		sa := g.SectorAngle(CHS{Cyl: cyl, Head: head, Sector: s})
		gap := sa - angle
		if gap < 0 {
			gap++
		}
		return gap <= 1.0/float64(spt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	g := Uniform(100, 4, 50)
	if err := g.Validate(); err != nil {
		t.Fatalf("Uniform geometry invalid: %v", err)
	}
	if g.TotalSectors() != 100*4*50 {
		t.Error("Uniform sector count wrong")
	}
}

func TestToCHSPanicsOutOfRange(t *testing.T) {
	g := testGeom()
	defer func() {
		if recover() == nil {
			t.Error("ToCHS accepted out-of-range LBA")
		}
	}()
	g.ToCHS(g.TotalSectors())
}
