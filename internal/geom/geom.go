// Package geom models the physical geometry of a disk drive: cylinders,
// heads (surfaces), zoned sectors-per-track, and track/cylinder skew.
//
// The Trail driver needs "a detailed knowledge of the log disk's physical
// geometry" (paper §3.1): it converts logical block addresses to
// (cylinder, head, sector) triples, knows how many sectors each track holds,
// and computes the angular position of any sector so it can predict where
// the head is. This package is that knowledge, shared by the disk model
// (which uses it as ground truth) and the Trail driver (which uses it for
// prediction).
package geom

import "fmt"

// SectorSize is the fixed sector payload size in bytes, as on every drive
// the paper uses.
const SectorSize = 512

// Zone is a contiguous range of cylinders that share a sectors-per-track
// count. Modern drives record more sectors on outer (lower-numbered)
// cylinders.
type Zone struct {
	// StartCyl and EndCyl bound the zone, inclusive.
	StartCyl, EndCyl int
	// SPT is the number of sectors per track within the zone.
	SPT int
}

// Geometry describes a drive's physical layout. All fields must be
// positive and zones must tile [0, Cylinders) in order; Validate checks this.
type Geometry struct {
	// Cylinders is the number of cylinder positions of the arm.
	Cylinders int
	// Heads is the number of recording surfaces (tracks per cylinder).
	Heads int
	// Zones partition the cylinders by sectors-per-track.
	Zones []Zone
	// TrackSkew is the sector offset applied at each head switch within a
	// cylinder so that sequential transfers continue without losing a
	// revolution.
	TrackSkew int
	// CylSkew is the additional sector offset applied at each cylinder
	// boundary, covering the track-to-track seek.
	CylSkew int
}

// Validate reports whether the geometry is self-consistent.
func (g *Geometry) Validate() error {
	if g.Cylinders <= 0 || g.Heads <= 0 {
		return fmt.Errorf("geom: non-positive cylinders (%d) or heads (%d)", g.Cylinders, g.Heads)
	}
	if len(g.Zones) == 0 {
		return fmt.Errorf("geom: no zones")
	}
	next := 0
	for i, z := range g.Zones {
		if z.StartCyl != next {
			return fmt.Errorf("geom: zone %d starts at cyl %d, want %d", i, z.StartCyl, next)
		}
		if z.EndCyl < z.StartCyl {
			return fmt.Errorf("geom: zone %d ends (%d) before it starts (%d)", i, z.EndCyl, z.StartCyl)
		}
		if z.SPT <= 0 {
			return fmt.Errorf("geom: zone %d has SPT %d", i, z.SPT)
		}
		next = z.EndCyl + 1
	}
	if next != g.Cylinders {
		return fmt.Errorf("geom: zones cover %d cylinders, want %d", next, g.Cylinders)
	}
	if g.TrackSkew < 0 || g.CylSkew < 0 {
		return fmt.Errorf("geom: negative skew")
	}
	return nil
}

// Uniform returns a single-zone geometry, convenient for tests.
func Uniform(cylinders, heads, spt int) Geometry {
	return Geometry{
		Cylinders: cylinders,
		Heads:     heads,
		Zones:     []Zone{{StartCyl: 0, EndCyl: cylinders - 1, SPT: spt}},
	}
}

// CHS is a physical sector address: cylinder, head (surface), sector index
// on the track.
type CHS struct {
	Cyl, Head, Sector int
}

func (a CHS) String() string { return fmt.Sprintf("(c%d h%d s%d)", a.Cyl, a.Head, a.Sector) }

// zoneOf returns the zone containing cyl.
func (g *Geometry) zoneOf(cyl int) *Zone {
	// Zones are few (single digits on real drives); linear scan is fine and
	// avoids keeping a parallel index structure consistent.
	for i := range g.Zones {
		if cyl >= g.Zones[i].StartCyl && cyl <= g.Zones[i].EndCyl {
			return &g.Zones[i]
		}
	}
	panic(fmt.Sprintf("geom: cylinder %d outside geometry", cyl))
}

// SPTAt returns the sectors-per-track at the given cylinder.
func (g *Geometry) SPTAt(cyl int) int { return g.zoneOf(cyl).SPT }

// TotalTracks returns the number of tracks on the drive.
func (g *Geometry) TotalTracks() int { return g.Cylinders * g.Heads }

// TotalSectors returns the drive capacity in sectors.
func (g *Geometry) TotalSectors() int64 {
	var n int64
	for _, z := range g.Zones {
		n += int64(z.EndCyl-z.StartCyl+1) * int64(g.Heads) * int64(z.SPT)
	}
	return n
}

// Capacity returns the drive capacity in bytes.
func (g *Geometry) Capacity() int64 { return g.TotalSectors() * SectorSize }

// cylStartLBA returns the LBA of sector 0, head 0 of the given cylinder.
func (g *Geometry) cylStartLBA(cyl int) int64 {
	var lba int64
	for _, z := range g.Zones {
		if cyl <= z.StartCyl {
			break
		}
		end := z.EndCyl
		if cyl-1 < end {
			end = cyl - 1
		}
		lba += int64(end-z.StartCyl+1) * int64(g.Heads) * int64(z.SPT)
	}
	return lba
}

// TrackIndex identifies a track by a dense index in [0, TotalTracks), laid
// out cylinder-major then head. Trail's circular track allocator works in
// this index space.
func (g *Geometry) TrackIndex(cyl, head int) int { return cyl*g.Heads + head }

// TrackOf returns the (cylinder, head) of a dense track index.
func (g *Geometry) TrackOf(track int) (cyl, head int) {
	return track / g.Heads, track % g.Heads
}

// TrackStartLBA returns the LBA of sector 0 of the given track.
func (g *Geometry) TrackStartLBA(cyl, head int) int64 {
	return g.cylStartLBA(cyl) + int64(head)*int64(g.SPTAt(cyl))
}

// ToLBA converts a physical address to its logical block address.
func (g *Geometry) ToLBA(a CHS) int64 {
	spt := g.SPTAt(a.Cyl)
	if a.Sector < 0 || a.Sector >= spt || a.Head < 0 || a.Head >= g.Heads {
		panic(fmt.Sprintf("geom: invalid address %v (spt %d, heads %d)", a, spt, g.Heads))
	}
	return g.TrackStartLBA(a.Cyl, a.Head) + int64(a.Sector)
}

// ToCHS converts a logical block address to its physical address.
func (g *Geometry) ToCHS(lba int64) CHS {
	if lba < 0 || lba >= g.TotalSectors() {
		panic(fmt.Sprintf("geom: LBA %d outside drive (capacity %d sectors)", lba, g.TotalSectors()))
	}
	rem := lba
	for _, z := range g.Zones {
		zoneSectors := int64(z.EndCyl-z.StartCyl+1) * int64(g.Heads) * int64(z.SPT)
		if rem >= zoneSectors {
			rem -= zoneSectors
			continue
		}
		perCyl := int64(g.Heads) * int64(z.SPT)
		cyl := z.StartCyl + int(rem/perCyl)
		rem %= perCyl
		head := int(rem / int64(z.SPT))
		sector := int(rem % int64(z.SPT))
		return CHS{Cyl: cyl, Head: head, Sector: sector}
	}
	panic("geom: unreachable")
}

// skewSectors returns the cumulative skew (in sectors) applied to the given
// track: sector 0 of the track is physically located skew sectors after the
// angular origin.
func (g *Geometry) skewSectors(cyl, head int) int {
	return cyl*g.CylSkew + (cyl*(g.Heads-1)+head)*g.TrackSkew
}

// SectorAngle returns the angular position, as a fraction of a revolution in
// [0, 1), of the *start* of the given sector. The disk model compares this
// with the rotational phase to compute rotational latency; the Trail
// predictor uses the same function (geometry is public drive knowledge).
func (g *Geometry) SectorAngle(a CHS) float64 {
	spt := g.SPTAt(a.Cyl)
	slot := (a.Sector + g.skewSectors(a.Cyl, a.Head)) % spt
	return float64(slot) / float64(spt)
}

// NextTrack returns the track index following the given one, wrapping at the
// end of the drive.
func (g *Geometry) NextTrack(track int) int { return (track + 1) % g.TotalTracks() }

// ClosestSectorOnTrack returns the sector index on track (cyl, head) whose
// start is angularly closest *after* the given angle (a fraction of a
// revolution), plus margin sectors. Trail uses this to pick the landing
// sector when repositioning the head to the next track (paper §3.1: "the
// sector on the next track that is physically the closest to the head's
// current position").
func (g *Geometry) ClosestSectorOnTrack(cyl, head int, angle float64, margin int) int {
	spt := g.SPTAt(cyl)
	skew := g.skewSectors(cyl, head) % spt
	// Sector s starts at angle ((s + skew) mod spt)/spt. Invert: the first
	// sector starting at or after `angle` is ceil(angle*spt) - skew.
	slot := int(angle*float64(spt)) + 1 // strictly after the current angle
	s := ((slot-skew)%spt + spt) % spt
	return (s + margin) % spt
}
