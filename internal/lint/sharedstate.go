package lint

import (
	"go/token"
	"sort"
	"strings"
)

// SharedState is the parallel-DES safety baseline. Conservative parallel
// simulation partitions the event queue by shard/disk and runs each
// partition's handlers concurrently up to the lookahead horizon; that is
// only sound if no two partitions' handlers race on state outside the
// kernel. This analyzer computes, from each event-handler root (every
// function or literal passed to sim.Env.Go / GoDaemon), the call-graph
// closure of that root, and reports every package-level variable mutated on
// more than one root's path without going through sim.Env.
//
// Variables owned by internal/sim itself are exempt: the kernel serializes
// its own state by construction (it is the thing being parallelized, and
// its internals are the synchronization point). Everything else mutated
// from two roots is a machine-checked blocker for the conservative-parallel
// kernel and must either move behind sim.Env, become per-root state, or
// carry a //lint:allow sharedstate <reason> at the mutation site.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "package-level variables mutated from more than one event-handler root block conservative-parallel DES",
	Run:  runSharedState,
}

// sharedSite is one reportable mutation of a multi-root variable.
type sharedSite struct {
	vr    string
	fn    *FuncInfo
	pos   token.Pos
	roots []string // display names of the mutating roots, sorted
}

func runSharedState(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	for _, s := range pass.Prog.sharedSites() {
		if s.fn.Pkg != pass.CurPkg {
			continue
		}
		pass.Reportf(s.pos,
			"package-level var %s is mutated on %d event-handler roots (%s); shared state outside sim.Env blocks conservative-parallel DES — move it behind the kernel or make it per-root",
			DisplayName(s.vr), len(s.roots), strings.Join(s.roots, ", "))
	}
	return nil
}

// sharedSites computes (once per Program) every mutation site of a
// package-level variable that more than one event-handler root reaches.
func (prog *Program) sharedSites() []sharedSite {
	if prog.sharedComputed {
		return prog.shared
	}
	prog.sharedComputed = true

	roots := prog.Roots()
	closures := make(map[string]map[string]bool, len(roots))
	for _, r := range roots {
		closures[r] = prog.Reach([]string{r}, true)
	}

	// mutatingRoots maps each in-scope package var to the set of roots whose
	// closure mutates it.
	mutatingRoots := make(map[string]map[string]bool)
	for _, fid := range sortedFuncIDs(prog) {
		fi := prog.Funcs[fid]
		for _, vm := range fi.VarMuts {
			if !sharedStateInScope(vm.Var) {
				continue
			}
			for _, r := range roots {
				if closures[r][fid] {
					if mutatingRoots[vm.Var] == nil {
						mutatingRoots[vm.Var] = make(map[string]bool)
					}
					mutatingRoots[vm.Var][r] = true
				}
			}
		}
	}

	for _, fid := range sortedFuncIDs(prog) {
		fi := prog.Funcs[fid]
		for _, vm := range fi.VarMuts {
			rs := mutatingRoots[vm.Var]
			if len(rs) < 2 {
				continue
			}
			// Report only sites on some root's path: a mutation in setup
			// code that also writes the var runs before the event loop and
			// is not a race.
			onPath := false
			for r := range rs {
				if closures[r][fid] {
					onPath = true
					break
				}
			}
			if !onPath {
				continue
			}
			names := make([]string, 0, len(rs))
			for r := range rs {
				names = append(names, DisplayName(r))
			}
			sort.Strings(names)
			prog.shared = append(prog.shared, sharedSite{vr: vm.Var, fn: fi, pos: vm.Pos, roots: names})
		}
	}
	return prog.shared
}

// sharedStateInScope reports whether a package-level variable participates
// in the shared-state audit: module-owned, and not the simulation kernel's
// own serialized state.
func sharedStateInScope(varID string) bool {
	return strings.HasPrefix(varID, "tracklog") &&
		!strings.HasPrefix(varID, "tracklog/internal/sim.")
}
