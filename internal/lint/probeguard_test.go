package lint

import "testing"

func TestProbeGuardFixture(t *testing.T) {
	// Positive: a Device implementation and a durable log that never reach
	// an emission. Negative: helper-mediated emission, a pure relay device,
	// and a paired write-back flight.
	RunFixture(t, "testdata/src/tracklog/internal/probeg", ProbeGuard)
}

func TestProbeGuardWBPairingFixture(t *testing.T) {
	// A package emitting ProbeWBStart with no ProbeWBEnd anywhere.
	RunFixture(t, "testdata/src/tracklog/internal/wbflight", ProbeGuard)
}
