package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// Minimal implementation of the `go vet -vettool` protocol (the same wire
// format as golang.org/x/tools/go/analysis/unitchecker, reimplemented here
// because the tree deliberately has no external dependencies).
//
// The go command drives a vettool in two ways:
//
//   - `tool -V=full` must print a stable version fingerprint used as the
//     cache key (handled in cmd/trailcheck).
//   - `tool <unit>.cfg` analyzes one compilation unit described by a JSON
//     config, prints diagnostics as JSON to stdout, and exits nonzero when
//     there are findings.

// vetConfig mirrors the unit-checker config the go command writes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetDiag is one diagnostic in the go vet JSON output format.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// RunUnit executes the suite on one vet compilation unit. It returns the
// number of diagnostics printed; on any setup error it returns err. The
// caller decides the exit code.
func RunUnit(cfgPath string, analyzers []*Analyzer, stdout io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}

	// The go command expects a facts file even though this suite exports
	// no facts; write it first so even an analysis crash leaves the
	// protocol intact.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	// The invariants govern the simulated stack, not its tests (tests
	// legitimately use wall-clock timeouts and unsorted iteration in
	// assertions), so _test.go files are dropped — mirroring Load, which
	// never parses them. Units that are all test files (external _test
	// packages) are vacuously clean.
	goFiles := cfg.GoFiles[:0:0]
	for _, gf := range cfg.GoFiles {
		if !strings.HasSuffix(gf, "_test.go") {
			goFiles = append(goFiles, gf)
		}
	}

	pkg := &Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset}
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
	if len(pkg.TypeErrors) > 0 && !cfg.SucceedOnTypecheckFailure {
		return 0, fmt.Errorf("%s: %v", cfg.ImportPath, pkg.TypeErrors[0])
	}

	// Unit mode sees one package at a time, so the analyzers that assert
	// absence over a whole-program closure cannot run soundly here (a
	// helper one package over would turn into a false positive). They are
	// standalone-mode only; the rest of the suite runs per unit.
	unitAnalyzers := analyzers[:0:0]
	for _, a := range analyzers {
		if !a.NeedWholeProgram {
			unitAnalyzers = append(unitAnalyzers, a)
		}
	}

	diags, err := Run([]*Package{pkg}, unitAnalyzers)
	if err != nil {
		return 0, err
	}

	// Output format: { "<import path>": { "<analyzer>": [ {posn, message} ] } }
	// — printed only when there are findings; go vet treats any stdout as
	// output worth surfacing, so clean units must stay silent.
	if len(diags) == 0 {
		return 0, nil
	}
	byAnalyzer := make(map[string][]vetDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], vetDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]vetDiag{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		return 0, err
	}
	return len(diags), nil
}
