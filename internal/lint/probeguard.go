package lint

import (
	"sort"
	"strings"
)

// ProbeGuard enforces the probe contract of internal/crashexplore: every
// durability edge — a request acknowledged, bytes hitting media, a
// write-back flight, a log commit — must emit the matching sim probe.
// crashexplore enumerates crash points by probe index; a durability edge
// with no probe is a crash point the explorer can never cut at, so its
// survival audit silently under-counts.
//
// Three whole-program rules, all resolved over the call graph (static
// calls, contained literals, RTA interface dispatch):
//
//  1. Completion probes. Every blockdev.Device implementation must reach
//     sim.Env.EmitProbe with ProbeAck or ProbeMediaWrite somewhere in the
//     union closure of its methods. Pure relays satisfy this transitively
//     (their closure includes the wrapped device's emission); a device that
//     is genuinely outside the measured world carries //lint:allow
//     probeguard <reason> at the type declaration.
//
//  2. Write-back pairing. A package that emits ProbeWBStart must also emit
//     ProbeWBEnd (and vice versa): an unpaired flight makes the explorer's
//     in-flight accounting undercount torn write-backs.
//
//  3. Commit probes. Every durable-log type (method set with Append and
//     Flush(*sim.Proc) error) must reach a ProbeCommit emission from those
//     two methods: a flushed-but-unprobed commit is an acknowledged
//     durability promise the crash explorer cannot test.
var ProbeGuard = &Analyzer{
	Name:             "probeguard",
	Doc:              "every ack/media-write/write-back/commit durability edge must emit the matching sim probe",
	Run:              runProbeGuard,
	NeedWholeProgram: true,
}

// deviceShape is the structural signature of blockdev.Device.
var deviceShape = map[string]string{
	"ID":      "func() tracklog/internal/blockdev.DevID",
	"Sectors": "func() int64",
	"Read":    "func(*tracklog/internal/sim.Proc, int64, int) ([]byte, error)",
	"Write":   "func(*tracklog/internal/sim.Proc, int64, int, []byte) error",
}

// durableLogShape is the structural signature of a durable log's commit
// surface (wal.Log and anything shaped like it).
var durableLogShape = map[string]string{
	"Append": "func(*tracklog/internal/sim.Proc, []byte) (int64, error)",
	"Flush":  "func(*tracklog/internal/sim.Proc) error",
}

func runProbeGuard(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	prog := pass.Prog

	for _, tid := range sortedTypeIDs(prog, pass.CurPkg) {
		ti := prog.Types[tid]

		if ti.Implements(deviceShape) {
			kinds := closureProbeKinds(prog, methodRoots(ti))
			if !kinds["ProbeAck"] && !kinds["ProbeMediaWrite"] && !kinds["?"] {
				pass.Reportf(ti.Pos,
					"blockdev.Device implementation %s never reaches sim.EmitProbe(ProbeAck or ProbeMediaWrite): its durability edges are invisible to crashexplore (//lint:allow probeguard <reason> if the device is outside the measured world)",
					ti.Name)
			}
		}

		if ti.Implements(durableLogShape) {
			roots := []string{ti.Methods["Append"], ti.Methods["Flush"]}
			kinds := closureProbeKinds(prog, roots)
			if !kinds["ProbeCommit"] && !kinds["?"] {
				pass.Reportf(ti.Pos,
					"durable log %s (Append/Flush) never reaches sim.EmitProbe(ProbeCommit): flushed commits are crash points the explorer cannot cut at",
					ti.Name)
			}
		}
	}

	checkWBPairing(pass)
	return nil
}

// methodRoots returns the closure roots of a type: every declared or
// promoted method body, in deterministic order.
func methodRoots(ti *TypeInfo) []string {
	var roots []string
	for _, id := range ti.Methods {
		roots = append(roots, id)
	}
	sort.Strings(roots)
	return roots
}

// closureProbeKinds returns the set of probe-kind constant names emitted
// anywhere in the call-graph closure of roots ("?" for computed kinds).
func closureProbeKinds(prog *Program, roots []string) map[string]bool {
	kinds := make(map[string]bool)
	for fid := range prog.Reach(roots, true) {
		fi, ok := prog.Funcs[fid]
		if !ok {
			continue
		}
		for _, pe := range fi.ProbeEmits {
			kinds[pe.Kind] = true
		}
	}
	return kinds
}

// checkWBPairing reports unpaired write-back probes at package granularity:
// the start and end of a flight are emitted by the same layer, so a package
// emitting one without the other has lost an edge.
func checkWBPairing(pass *Pass) {
	prog := pass.Prog
	emitted := make(map[string][]ProbeEmit) // kind -> sites in this package
	for _, fid := range prog.FuncsOfPackage(pass.CurPkg) {
		for _, pe := range prog.Funcs[fid].ProbeEmits {
			emitted[pe.Kind] = append(emitted[pe.Kind], pe)
		}
	}
	if emitted["?"] != nil {
		return // computed kinds: pairing is not statically decidable
	}
	report := func(have, want string) {
		sites := emitted[have]
		sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
		pass.Reportf(sites[0].Pos,
			"package emits sim.%s but never sim.%s: an unpaired write-back flight undercounts torn write-backs in crashexplore",
			have, want)
	}
	if len(emitted["ProbeWBStart"]) > 0 && len(emitted["ProbeWBEnd"]) == 0 {
		report("ProbeWBStart", "ProbeWBEnd")
	}
	if len(emitted["ProbeWBEnd"]) > 0 && len(emitted["ProbeWBStart"]) == 0 {
		report("ProbeWBEnd", "ProbeWBStart")
	}
}
