package lint

import (
	"go/ast"
	"strings"
)

// VirtualTime forbids wall-clock time in simulated-path packages.
//
// The rotational model is microsecond-exact: the Trail driver predicts the
// sector under the head from virtual timestamps, and one stray time.Now in
// a simulated path silently decouples the prediction from the simulator's
// ground truth (and makes two same-seed runs diverge). All timing must flow
// through sim.Env.Now / sim.Proc timers. time.Duration values and
// constants (time.Millisecond, ...) remain legal — only the wall-clock
// entry points are banned, whether called or passed as function values.
//
// Call sites in cmd/ that legitimately need the wall clock (progress
// reporting on a human terminal) are listed in wallClockAllowed; anything
// else needs a //lint:allow virtualtime <reason> escape.
//
// The check is whole-program: beyond direct time.* references, any function
// that *reaches* the wall clock through the call graph is flagged at its
// first offending call edge, with the witness chain. An allowlist entry or
// //lint:allow sanctions the site it covers, not the functions that call
// it — telemetry.StartWall may read the wall clock, but a simulated-path
// package calling StartWall is still a finding. Functions with their own
// direct time.* references are the direct half's territory and are not
// re-reported indirectly.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, ...) in simulated-path packages",
	Run:  runVirtualTime,
}

// wallClockBanned is the set of package time entry points that read or wait
// on the wall clock.
var wallClockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// simulatedPathPrefixes marks the packages whose time must be virtual. The
// whole library tree qualifies: every internal package either runs under
// the simulator or produces deterministic artifacts from virtual
// timestamps. Binaries under cmd/ are also covered so a new tool cannot
// quietly mix clocks; the per-site allowlist below carves out the
// wall-clock-legitimate exceptions.
var simulatedPathPrefixes = []string{
	"tracklog",
}

// wallClockAllowed maps a package's invariant path to the function names
// whose wall-clock use is sanctioned. Keep this list short and justified:
// these sites report human-perceived progress and never feed a simulated
// timestamp.
var wallClockAllowed = map[string]map[string]bool{
	// reproduce prints "Generated in Ns wall time" after the full report.
	"tracklog/cmd/reproduce": {"main": true},
	// simbench prints total wall time after the run; its per-world host-cost
	// measurements go through telemetry.StartWall (the wall side channel),
	// which carries its own //lint:allow escapes. run/runWorld drive that
	// side channel, so their indirect wall-clock reach is sanctioned too —
	// the measured wall durations feed -wall-out reporting, never a
	// simulated timestamp.
	"tracklog/cmd/simbench": {"main": true, "run": true, "runWorld": true},
}

func runVirtualTime(pass *Pass) error {
	inScope := false
	for _, prefix := range simulatedPathPrefixes {
		if pass.Path == prefix || strings.HasPrefix(pass.Path, prefix+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	allowed := wallClockAllowed[pass.Path]
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if !wallClockBanned[obj.Name()] {
				return true
			}
			if allowed != nil && allowed[enclosingFuncName(file, sel.Pos())] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in a simulated-path package; route timing through the virtual clock (sim.Env.Now / sim.Proc timers)",
				obj.Name())
			return true
		})
	}
	reportIndirectTime(pass, allowed)
	return nil
}

// reportIndirectTime is the whole-program half: functions with no direct
// time.* reference whose call graph still reaches the wall clock are
// flagged at their first offending call edge.
func reportIndirectTime(pass *Pass, allowed map[string]bool) {
	chains := pass.Prog.timeTaint()
	for _, fid := range pass.Prog.FuncsOfPackage(pass.CurPkg) {
		fi := pass.Prog.Funcs[fid]
		if len(fi.TimeRefs) > 0 {
			continue // a leaf: the direct half reported or sanctioned it
		}
		if allowed != nil && allowed[funcBaseName(fid)] {
			continue
		}
		if c := firstTaintedCall(fi, chains); c != nil {
			pass.Reportf(c.Pos,
				"call reaches the wall clock (%s) from a simulated-path package; route timing through the virtual clock",
				renderChain(chains[c.ID]))
		}
	}
}

// timeTaint seeds the caller-ward taint closure with every banned time.*
// reference — sanctioned or not: an escape covers the site, never its
// callers.
func (prog *Program) timeTaint() map[string][]string {
	if prog.timeChains == nil {
		seeds := make(map[string]string)
		for id, fi := range prog.Funcs {
			if len(fi.TimeRefs) > 0 {
				seeds[id] = "time." + fi.TimeRefs[0].Name
			}
		}
		prog.timeChains = prog.taintCallers(seeds)
	}
	return prog.timeChains
}
