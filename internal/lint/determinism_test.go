package lint

import "testing"

func TestDeterminismMapRangeFixture(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/sched", Determinism)
}

func TestDeterminismIndirectFixture(t *testing.T) {
	// Banned rand reached across a package boundary, and a map-range body
	// whose sink hides behind a helper call.
	RunFixture(t, "testdata/src/tracklog/internal/detind/...", Determinism)
}

func TestDeterminismRandExemption(t *testing.T) {
	// rand.go inside (normalized) tracklog/internal/sim is exempt; every
	// other file in the same package is not.
	RunFixture(t, "testdata/src/tracklog/internal/sim", Determinism)
}
