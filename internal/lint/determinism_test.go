package lint

import "testing"

func TestDeterminismMapRangeFixture(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/sched", Determinism)
}

func TestDeterminismRandExemption(t *testing.T) {
	// rand.go inside (normalized) tracklog/internal/sim is exempt; every
	// other file in the same package is not.
	RunFixture(t, "testdata/src/tracklog/internal/sim", Determinism)
}
