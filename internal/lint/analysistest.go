package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Fixture testing in the style of golang.org/x/tools/go/analysis/analysistest:
// a fixture package under testdata/src/... annotates the lines expected to
// be flagged with
//
//	// want "regexp"
//
// (several quoted regexps for several findings on one line). RunFixture
// loads the package with the production loader — so fixtures may import
// real module packages, and their import paths are normalized exactly like
// the real tree — runs the analyzers, and reports every mismatch in either
// direction.

// TestingT is the subset of *testing.T the fixture runner needs.
type TestingT interface {
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
	Helper()
}

var wantRE = regexp.MustCompile("// want ((?:[\"`][^\"`]*[\"`]\\s*)+)$")
var wantArgRE = regexp.MustCompile("[\"`]([^\"`]*)[\"`]")

// RunFixture analyzes the fixture package rooted at dir (relative to the
// caller's working directory, e.g. "testdata/src/tracklog/internal/trail")
// with the given analyzers and compares diagnostics against // want
// annotations.
func RunFixture(t TestingT, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load("", "./"+strings.TrimPrefix(dir, "./"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", dir, terr)
		}
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
						wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], arg[1])
					}
				}
			}
		}
	}

	got := make(map[key][]Diagnostic)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	keys := make(map[key]bool)
	for k := range wants {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].file != ordered[j].file {
			return ordered[i].file < ordered[j].file
		}
		return ordered[i].line < ordered[j].line
	})

	for _, k := range ordered {
		ws, ds := wants[k], got[k]
		matched := make([]bool, len(ds))
		for _, w := range ws {
			re, err := regexp.Compile(w)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, w, err)
				continue
			}
			found := false
			for i, d := range ds {
				if !matched[i] && re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: expected diagnostic matching %q, got %s", k.file, k.line, w, describe(ds))
			}
		}
		for i, d := range ds {
			if !matched[i] {
				t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", k.file, k.line, d.Message, d.Analyzer)
			}
		}
	}
}

func describe(ds []Diagnostic) string {
	if len(ds) == 0 {
		return "no diagnostics"
	}
	msgs := make([]string, len(ds))
	for i, d := range ds {
		msgs[i] = fmt.Sprintf("%q", d.Message)
	}
	return strings.Join(msgs, ", ")
}
