package lint

import "testing"

func TestSnapshotGuardFixture(t *testing.T) {
	// Positive: a field encoded by a helper but forgotten on decode, and a
	// field in neither closure. Negative: a field round-tripping entirely
	// through helpers, constructor-only configuration, wiring fields, an
	// //lint:allow-suppressed derived field, and a non-Snapshotter type.
	RunFixture(t, "testdata/src/tracklog/internal/snapguard", SnapshotGuard)
}
