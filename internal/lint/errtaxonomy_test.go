package lint

import "testing"

func TestErrTaxonomyFixture(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/wal", ErrTaxonomy)
}
