// Virtualtime allowlist fixture: the normalized path tracklog/cmd/reproduce
// has an allowlist entry sanctioning wall-clock use inside main (progress
// reporting on a human terminal) — and only there.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now() // allowlisted: (tracklog/cmd/reproduce, main)
	report()
	fmt.Println(time.Since(start)) // allowlisted too
}

func report() {
	_ = time.Now() // want `time\.Now reads the wall clock`
}
