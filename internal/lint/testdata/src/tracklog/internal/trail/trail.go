// Package trail is a virtualtime fixture: its normalized path is
// tracklog/internal/trail, squarely inside the simulated-path set.
package trail

import "time"

// Durations and time constants are legal: they carry no wall-clock reading.
const window = 5 * time.Millisecond

func budget(d time.Duration) time.Duration { return d + window }

func bad() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	time.Sleep(window)       // want `time\.Sleep reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func badValues() {
	_ = time.After(window) // want `time\.After reads the wall clock`
	// Referencing (not calling) a banned entry point is just as wrong.
	f := time.Now // want `time\.Now reads the wall clock`
	_ = f
	t := time.NewTicker(window) // want `time\.NewTicker reads the wall clock`
	t.Stop()
}

func suppressed() {
	// A justified escape hatch is honored:
	//lint:allow virtualtime fixture demonstrates the escape hatch
	_ = time.Now()
	_ = time.Now() //lint:allow virtualtime trailing-comment style works too
}
