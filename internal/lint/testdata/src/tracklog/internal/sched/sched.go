// Package sched is a determinism fixture for the map-range → output-sink
// rule. Map iteration order is randomized per run; emitting inside the
// loop produces run-dependent bytes.
package sched

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func direct(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized, but this range body reaches output sink fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func nested(w io.Writer, m map[string]map[string]int) {
	for k, inner := range m { // want `reaches output sink fmt\.Fprintf`
		for kk := range inner { // want `reaches output sink fmt\.Fprintf`
			fmt.Fprintf(w, "%s/%s\n", k, kk)
		}
	}
}

func buffered(w *bufio.Writer, m map[int]string) {
	for _, v := range m { // want `reaches output sink Writer\.WriteString`
		w.WriteString(v)
	}
}

func builder(m map[int]string) string {
	var b strings.Builder
	for _, v := range m { // want `reaches output sink Builder\.WriteString`
		b.WriteString(v)
	}
	return b.String()
}

// sorted is the blessed pattern: collect, sort, then range the slice.
func sorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// aggregate never reaches a sink: pure reduction over a map is fine.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressed(m map[string]int) {
	// The counters here are all-or-nothing; order is cosmetic:
	//lint:allow determinism debug helper never ships bytes into artifacts
	for k := range m {
		fmt.Fprintln(os.Stderr, k)
	}
}
