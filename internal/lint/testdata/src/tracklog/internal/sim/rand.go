// Determinism fixture: rand.go in (normalized) tracklog/internal/sim is
// the one file allowed to touch math/rand — it is where the deterministic
// generator lives in the real tree.
package sim

import "math/rand"

// Seeded returns a deterministic source the simulator owns.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
