package sim

import (
	crand "crypto/rand" // want `import of crypto/rand breaks reproducibility`
)

func entropy(b []byte) { crand.Read(b) }
