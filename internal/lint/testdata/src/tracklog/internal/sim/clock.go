package sim

import (
	"math/rand" // want `import of math/rand breaks reproducibility`
)

// Stray rand use outside rand.go is flagged even inside internal/sim.
func jitter() int { return rand.Int() }
