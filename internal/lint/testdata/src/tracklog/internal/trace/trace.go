// Package trace is a nilguard home-package fixture: its normalized path is
// tracklog/internal/trace, so the type named Tracer carries the
// nil-is-disabled contract and every exported pointer-receiver method must
// be nil-receiver safe.
package trace

// Event is a minimal stand-in for the real event payload.
type Event struct{ At int64 }

// Tracer mimics the real ring-buffered tracer.
type Tracer struct {
	buf []Event
	n   int
}

// Enabled never touches state: safe without a guard.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit opens with the canonical guard.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.buf = append(t.buf, ev)
	t.n++
}

// Events uses the short-circuit form of the guard; the field read on the
// right of || only runs when t is non-nil.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, len(t.buf))
	copy(out, t.buf)
	return out
}

// Flush only calls other (checked) methods: safe without its own guard.
func (t *Tracer) Flush() []Event {
	evs := t.Events()
	t.Emit(Event{})
	return evs
}

// Len reads a field with no guard in sight: the contract violation.
func (t *Tracer) Len() int { // want `exported method \(\*Tracer\)\.Len touches receiver state without a nil guard`
	return t.n
}

// LateGuard guards too late: the field read precedes the check.
func (t *Tracer) LateGuard() int { // want `exported method \(\*Tracer\)\.LateGuard touches receiver state`
	n := t.n
	if t == nil {
		return 0
	}
	return n
}

// Guarded uses an inline `t != nil` region instead of an early return;
// state is only touched inside it.
func (t *Tracer) Guarded() int {
	n := -1
	if t != nil {
		n = t.n
	}
	return n
}

// reset is unexported: only reachable from code that already holds a
// non-nil tracer, so it is outside the contract.
func (t *Tracer) reset() { t.n = 0 }

// Suppressed documents a deliberate exception.
//
//lint:allow nilguard fixture demonstrates the escape hatch
func (t *Tracer) Suppressed() int { return t.n }
