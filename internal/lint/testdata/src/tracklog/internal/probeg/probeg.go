// Package probeg is a probeguard fixture: device and durable-log shapes are
// matched structurally against the real tracklog/internal/blockdev and
// tracklog/internal/sim types, and probe emissions are found through helper
// calls, so only the whole-program closure can tell a silent device from a
// relayed one.
package probeg

import (
	"tracklog/internal/blockdev"
	"tracklog/internal/sim"
)

// MuteDev implements blockdev.Device but never emits a completion probe:
// its durability edges are invisible to crashexplore.
type MuteDev struct { // want `blockdev\.Device implementation MuteDev never reaches sim\.EmitProbe\(ProbeAck or ProbeMediaWrite\)`
	env *sim.Env
}

var _ blockdev.Device = (*MuteDev)(nil)

func (d *MuteDev) ID() blockdev.DevID { return blockdev.DevID{Major: 8, Minor: 0} }

func (d *MuteDev) Sectors() int64 { return 128 }

func (d *MuteDev) Read(p *sim.Proc, lba int64, count int) ([]byte, error) { return nil, nil }

func (d *MuteDev) Write(p *sim.Proc, lba int64, count int, data []byte) error { return nil }

// AckDev emits its ack two call edges below Write.
type AckDev struct {
	env *sim.Env
	id  blockdev.DevID
}

var _ blockdev.Device = (*AckDev)(nil)

func (d *AckDev) ID() blockdev.DevID { return d.id }

func (d *AckDev) Sectors() int64 { return 128 }

func (d *AckDev) Read(p *sim.Proc, lba int64, count int) ([]byte, error) { return nil, nil }

func (d *AckDev) Write(p *sim.Proc, lba int64, count int, data []byte) error {
	d.complete(p, lba, count)
	return nil
}

// complete is the helper hop: an intraprocedural look at Write sees no probe.
func (d *AckDev) complete(p *sim.Proc, lba int64, count int) {
	d.env.EmitProbe(p, sim.ProbeAck, d.id.String(), lba, count)
}

// RelayDev forwards to a wrapped AckDev; its closure reaches the wrapped
// emission transitively, so a pure relay is clean.
type RelayDev struct{ inner *AckDev }

var _ blockdev.Device = (*RelayDev)(nil)

func (d *RelayDev) ID() blockdev.DevID { return d.inner.ID() }

func (d *RelayDev) Sectors() int64 { return d.inner.Sectors() }

func (d *RelayDev) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	return d.inner.Read(p, lba, count)
}

func (d *RelayDev) Write(p *sim.Proc, lba int64, count int, data []byte) error {
	return d.inner.Write(p, lba, count, data)
}

// MuteLog has the durable-log shape but never probes its commits.
type MuteLog struct { // want `durable log MuteLog \(Append/Flush\) never reaches sim\.EmitProbe\(ProbeCommit\)`
	env *sim.Env
}

func (l *MuteLog) Append(p *sim.Proc, rec []byte) (int64, error) { return 0, nil }

func (l *MuteLog) Flush(p *sim.Proc) error { return nil }

// CommitLog probes its commit through a helper: clean.
type CommitLog struct{ env *sim.Env }

func (l *CommitLog) Append(p *sim.Proc, rec []byte) (int64, error) { return 0, nil }

func (l *CommitLog) Flush(p *sim.Proc) error {
	l.mark(p)
	return nil
}

func (l *CommitLog) mark(p *sim.Proc) {
	l.env.EmitProbe(p, sim.ProbeCommit, "log", 0, 0)
}

// flight opens and closes a write-back in the same package: paired, clean.
func flight(env *sim.Env, p *sim.Proc) {
	env.EmitProbe(p, sim.ProbeWBStart, "data0", 0, 8)
	env.EmitProbe(p, sim.ProbeWBEnd, "data0", 0, 8)
}
