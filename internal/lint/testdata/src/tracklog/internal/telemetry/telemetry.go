// Package telemetry is a nilguard home-package fixture: its normalized
// path is tracklog/internal/telemetry, so Registry, Counter, Gauge and
// Histogram carry the nil-is-disabled contract — exported pointer-receiver
// methods must be nil-receiver safe, and (being installed handles) their
// fields may only be stored from Set*/New* functions.
package telemetry

// Registry mimics the real metric registry.
type Registry struct {
	n int
}

// Counter mimics the real counter handle.
type Counter struct {
	v int64
}

// Gauge exists so the consumer half has a second handle type to store.
type Gauge struct {
	v float64
}

// Histogram completes the handle set.
type Histogram struct {
	count int64
}

// NewRegistry is the constructor; handles are born here.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a counter: canonical guard, then state.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.n++
	return &Counter{}
}

// Len reads a field with no guard: the contract violation.
func (r *Registry) Len() int { // want `exported method \(\*Registry\)\.Len touches receiver state without a nil guard`
	return r.n
}

// Inc opens with the canonical guard.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Value uses the short-circuit form.
func (c *Counter) Value() int64 {
	if c == nil || c.v < 0 {
		return 0
	}
	return c.v
}

// Bump only calls other (checked) methods: safe without its own guard.
func (c *Counter) Bump() int64 {
	c.Inc()
	return c.Value()
}

// Set guards too late: the violation fires on the first field read.
func (g *Gauge) Set(v float64) { // want `exported method \(\*Gauge\)\.Set touches receiver state`
	old := g.v
	if g == nil || old == v {
		return
	}
	g.v = v
}

// Observe uses an inline guard region instead of an early return.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.count++
	}
}

// Count reads unguarded state under a suppression directive.
//
//lint:allow nilguard fixture demonstrates the escape hatch
func (h *Histogram) Count() int64 { return h.count }

// component is the consumer half inside the home package: handle fields
// still only move through Set*/New* functions.
type component struct {
	reg *Registry
	c   *Counter
}

// SetRegistry is a sanctioned install site.
func (x *component) SetRegistry(r *Registry) { x.reg = r }

// newComponent is a sanctioned constructor site.
func newComponent(r *Registry) *component {
	x := &component{}
	x.reg = r
	x.c = r.Counter("ops")
	return x
}

// swap reinstalls a handle mid-run: the store-rule violation.
func (x *component) swap(r *Registry) {
	x.reg = r // want `handle field reg \(telemetry\.Registry\) is assigned outside a Set\*/New\* accessor`
}

// read dereferences a handle, defeating nil-is-disabled.
func read(c *Counter) Counter {
	return *c // want `dereferencing a telemetry\.Counter handle defeats the nil-is-disabled contract`
}
