// Package timeline is a nilguard home-package fixture: its normalized path
// is tracklog/internal/timeline, so Aggregator, Lane, Meter and Mark carry
// the nil-is-disabled contract — a nil aggregator means "timelines off" at
// zero cost on every state transition, so exported pointer-receiver methods
// must be nil-receiver safe, and (being installed handles) their fields may
// only be stored from Set*/New* functions.
package timeline

// Aggregator mimics the real bucketed state-occupancy aggregator.
type Aggregator struct {
	bucketNS int64
}

// Lane mimes the exclusive-state occupancy handle.
type Lane struct {
	agg *Aggregator
	cur int
}

// Meter mimics the time-weighted level handle.
type Meter struct {
	level float64
}

// Mark mimics the per-bucket event counter handle.
type Mark struct {
	n int64
}

// New is the constructor; handles are born here.
func New(bucketNS int64) *Aggregator { return &Aggregator{bucketNS: bucketNS} }

// BucketNS opens with the canonical guard.
func (a *Aggregator) BucketNS() int64 {
	if a == nil {
		return 0
	}
	return a.bucketNS
}

// Lane is a handle factory: guard, then state.
func (a *Aggregator) Lane(component, track string) *Lane {
	if a == nil {
		return nil
	}
	a.bucketNS += 0
	return &Lane{agg: a}
}

// Finish reads a field with no guard: the contract violation.
func (a *Aggregator) Finish(at int64) int64 { // want `exported method \(\*Aggregator\)\.Finish touches receiver state without a nil guard`
	return at / a.bucketNS
}

// Enter uses the short-circuit form of the guard.
func (l *Lane) Enter(state int, at int64) {
	if l == nil || state < 0 {
		return
	}
	l.cur = state
}

// Set guards too late: the violation fires on the first field read.
func (m *Meter) Set(v float64, at int64) { // want `exported method \(\*Meter\)\.Set touches receiver state`
	old := m.level
	if m == nil || old == v {
		return
	}
	m.level = v
}

// Add only calls other (checked) methods: safe without its own guard.
func (m *Meter) Add(d float64, at int64) {
	m.Set(d, at)
}

// Inc uses an inline guard region instead of an early return.
func (k *Mark) Inc(at int64) {
	if k != nil {
		k.n++
	}
}

// component is the consumer half inside the home package: handle fields
// still only move through Set*/New* accessors.
type component struct {
	agg   *Aggregator
	depth *Meter
}

// SetTimeline is a sanctioned install site.
func (x *component) SetTimeline(a *Aggregator) {
	x.agg = a
	x.depth = a.Lane("sched", "q").meter()
}

func (l *Lane) meter() *Meter {
	if l == nil {
		return nil
	}
	return &Meter{}
}

// swap reinstalls a handle mid-run: the store-rule violation.
func (x *component) swap(a *Aggregator) {
	x.agg = a // want `handle field agg \(timeline\.Aggregator\) is assigned outside a Set\*/New\* accessor`
}

// read dereferences a handle, defeating nil-is-disabled.
func read(m *Meter) Meter {
	return *m // want `dereferencing a timeline\.Meter handle defeats the nil-is-disabled contract`
}
