// Package detind is the interprocedural determinism fixture: banned rand is
// reached across a package boundary, and a map-range body reaches an output
// sink only through a helper call — both invisible to the old
// intraprocedural pass.
package detind

import (
	"fmt"
	"sort"

	"tracklog/internal/lint/testdata/src/tracklog/internal/detind/entropy"
)

// pick has no rand reference of its own; its call graph crosses into the
// entropy package to reach one.
func pick() int {
	return entropy.Roll() // want `call reaches a banned rand package \(banned rand\)`
}

// jitter is two hops from the leaf; the witness chain names the path.
func jitter() int {
	return pick() // want `call reaches a banned rand package \(entropy\.Roll -> banned rand\)`
}

// dump is the helper that hides the sink from the range body.
func dump(k string, v int) {
	fmt.Printf("%s=%d\n", k, v)
}

func emit(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized, but this range body reaches output sink via helper \(fmt\.Printf\)`
		dump(k, v)
	}
}

// emitSorted ranges a sorted slice: same helper, no map-order dependence.
func emitSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dump(k, m[k])
	}
}
