// Package entropy is the banned-rand leaf of the interprocedural
// determinism fixture: it imports math/rand directly (its own finding) and
// exports Roll for the parent package to reach indirectly.
package entropy

import "math/rand" // want `import of math/rand breaks reproducibility`

// Roll draws from the reseedable global source.
func Roll() int { return rand.Intn(6) }
