// Package stddisk is the nilguard consumer fixture: it imports the real
// observability packages and exercises the install-through-accessors and
// never-dereference rules.
package stddisk

import (
	"tracklog/internal/span"
	"tracklog/internal/trace"
)

// Device mimics an instrumented layer.
type Device struct {
	tr  *trace.Tracer
	rec *span.Recorder
}

// NewDevice may seed handles: constructors are accessors.
func NewDevice(tr *trace.Tracer) *Device { return &Device{tr: tr} }

// SetTracer is the blessed install path.
func (d *Device) SetTracer(tr *trace.Tracer) { d.tr = tr }

// SetRecorder likewise.
func (d *Device) SetRecorder(rec *span.Recorder) { d.rec = rec }

// serve calls nil-safe methods unguarded — exactly what the contract is
// for; no guard required.
func (d *Device) serve() {
	d.tr.Emit(trace.Event{At: 1, Kind: trace.KSeek})
	rq := d.rec.Start(span.KWrite, "std", "dev", 0, 1, 0)
	rq.Finish(10, false)
}

// disableTracing swaps instrumentation outside an accessor: flagged.
func (d *Device) disableTracing() {
	d.tr = nil // want `handle field tr \(trace\.Tracer\) is assigned outside a Set\*/New\* accessor`
}

// swapRecorder likewise.
func (d *Device) swapRecorder(rec *span.Recorder) {
	d.rec = rec // want `handle field rec \(span\.Recorder\) is assigned outside a Set\*/New\* accessor`
}

// deref defeats the nil-is-disabled contract outright.
func deref(tr *trace.Tracer) trace.Tracer {
	return *tr // want `dereferencing a trace\.Tracer handle defeats the nil-is-disabled contract`
}

// suppressedSwap documents a deliberate exception.
func (d *Device) suppressedSwap() {
	//lint:allow nilguard fixture demonstrates the escape hatch
	d.tr = nil
}
