// Package allowedge pins the //lint:allow placement rules: a directive
// covers its own line or the line directly below it, nothing further, and
// it silences only the analyzer it names.
package allowedge

import (
	"fmt"
	"time"
)

// Both placements cover the site.
func placement() {
	//lint:allow virtualtime fixture: directive on the line above
	_ = time.Now()
	_ = time.Now() //lint:allow virtualtime fixture: trailing same-line directive
}

// A directive with a blank line in between covers nothing.
func gapped() {
	//lint:allow virtualtime fixture: too far from the site to apply

	_ = time.Now() // want `time\.Now reads the wall clock`
}

// A directive for one analyzer does not silence another on the same line.
func wrongAnalyzer(m map[int]int) {
	//lint:allow determinism fixture: names the wrong analyzer for this site
	_ = time.Now() // want `time\.Now reads the wall clock`
	_ = m
}

// Two analyzers fire inside one function; each finding needs (and has) its
// own directive at its own anchor line.
func multi(m map[int]int) {
	//lint:allow determinism fixture: map-range sink is the point of the test
	for range m {
		fmt.Println(time.Now()) //lint:allow virtualtime fixture: wall stamp is the point of the test
	}
}

// stacked carries two directives — one above the line, one trailing — for
// different analyzers, both targeting the time.Now line below. The
// one-line-two-analyzers behaviour is pinned by a synthetic-diagnostics
// test in lint_test.go, which plants a determinism finding on that line.
func stacked() {
	//lint:allow determinism above-line half of a stacked pair
	_ = time.Now() //lint:allow virtualtime same-line half of a stacked pair
}
