// Package snapguard is a snapshotguard fixture. Counter implements the
// snapshot.Snapshotter shape structurally (no import needed); its codec
// runs through encodeStats/decodeStats helpers, so only a whole-program
// pass can tell which fields actually round-trip.
package snapguard

// Counter is live simulation state with a helper-mediated codec.
type Counter struct {
	// seq round-trips through encodeStats and decodeStats: clean, even
	// though neither Snapshot nor Restore mentions it directly.
	seq int64

	count int64 // want `field Counter\.count is mutated at runtime \(e\.g\. in snapguard\.Bump\) but never referenced on the Restore path`

	lost int64 // want `field Counter\.lost is mutated at runtime \(e\.g\. in snapguard\.Bump\) but never referenced on the Snapshot and Restore path`

	// cache is derived and rebuilt on first use; the escape hatch covers it.
	//lint:allow snapshotguard derived cache rebuilt lazily after restore
	cache int64

	// name is configuration: written only by the constructor, so it is not
	// runtime state and the codec may rebuild it instead of serialize it.
	name string

	// notify is wiring (a func can never round-trip through a codec).
	notify func()
}

// New wires a Counter; constructor writes do not make fields stateful.
func New(name string, notify func()) *Counter {
	return &Counter{name: name, notify: notify}
}

// Bump is the runtime mutator that makes the fields above stateful.
func Bump(c *Counter) {
	c.seq++
	c.count++
	c.lost++
	c.cache++
}

// Snapshot delegates the whole encode to a helper.
func (c *Counter) Snapshot() []byte { return encodeStats(nil, c) }

// encodeStats is one hop below Snapshot: an intraprocedural pass looking
// only at Snapshot's body would think no field is encoded at all.
func encodeStats(out []byte, c *Counter) []byte {
	out = appendI64(out, c.seq)
	out = appendI64(out, c.count)
	return out
}

// Restore delegates to decodeStats, which forgets count.
func (c *Counter) Restore(data []byte) error {
	decodeStats(c, data)
	return nil
}

func decodeStats(c *Counter, data []byte) {
	c.seq = readI64(data, 0)
}

// scratch has mutated fields but is not a Snapshotter: out of scope.
type scratch struct{ n int }

func grow(s *scratch) { s.n++ }

func appendI64(out []byte, v int64) []byte {
	for i := 0; i < 8; i++ {
		out = append(out, byte(v>>uint(8*i)))
	}
	return out
}

func readI64(data []byte, off int) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(data[off+i]) << uint(8*i)
	}
	return v
}
