// Package sharedst is a sharedstate fixture: two event-handler roots mutate
// one package-level counter — once directly, once through a shared helper —
// which blocks conservative-parallel DES. The fixture imports the real
// tracklog/internal/sim so env.Go spawns are recognized as roots.
package sharedst

import "tracklog/internal/sim"

// total is racy: both handlerA (via account) and handlerB (directly and via
// account) mutate it.
var total int

// local is mutated from exactly one root: not shared, not reported.
var local int

// setupOnly is written before the event loop, never on a root's path.
var setupOnly int

// audit is shared too, but both sites carry a justified escape.
var audit int

// Boot wires the world; it is not itself a root.
func Boot(env *sim.Env) {
	setupOnly = 1
	env.Go("a", handlerA)
	env.Go("b", handlerB)
	env.Go("c", func(p *sim.Proc) {
		local++
	})
}

func handlerA(p *sim.Proc) {
	account()
	//lint:allow sharedstate fixture: counter read only after env.Run returns
	audit++
}

func handlerB(p *sim.Proc) {
	account()
	total++ // want `package-level var sharedst\.total is mutated on 2 event-handler roots \(sharedst\.handlerA, sharedst\.handlerB\)`
	//lint:allow sharedstate fixture: counter read only after env.Run returns
	audit++
}

// account is the helper hop an intraprocedural pass cannot attribute to
// either handler.
func account() {
	total++ // want `package-level var sharedst\.total is mutated on 2 event-handler roots \(sharedst\.handlerA, sharedst\.handlerB\)`
}
