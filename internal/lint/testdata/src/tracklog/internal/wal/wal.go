// Package wal is an errtaxonomy fixture. It imports the real sentinel
// taxonomy from tracklog/internal/blockdev and defines one sentinel of its
// own, exercising ==/!=, switch-case, and fmt.Errorf wrapping rules.
package wal

import (
	"errors"
	"fmt"

	"tracklog/internal/blockdev"
)

// ErrLogFull is a module sentinel: same rules apply to locally declared ones.
var ErrLogFull = errors.New("wal: log region full")

func compare(err error) bool {
	if err == blockdev.ErrTimeout { // want `== comparison against sentinel blockdev\.ErrTimeout`
		return true
	}
	if err != blockdev.ErrMediaError { // want `!= comparison against sentinel blockdev\.ErrMediaError`
		return false
	}
	return err == ErrLogFull // want `== comparison against sentinel wal\.ErrLogFull`
}

func compareOK(err error) bool {
	if err == nil { // nil checks are fine
		return false
	}
	return errors.Is(err, blockdev.ErrTimeout) || errors.Is(err, ErrLogFull)
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case blockdev.ErrDeviceFailed: // want `switch-case comparison against sentinel blockdev\.ErrDeviceFailed`
		return 1
	default:
		return 2
	}
}

func wrapBad(sector int) error {
	return fmt.Errorf("wal: sector %d: %v", sector, blockdev.ErrMediaError) // want `wraps sentinel blockdev\.ErrMediaError without %w`
}

func wrapGood(sector int) error {
	return fmt.Errorf("wal: sector %d: %w", sector, blockdev.ErrMediaError)
}

func wrapSuppressed() error {
	// Deliberately flattening the sentinel into an opaque message:
	//lint:allow errtaxonomy message intentionally erases the sentinel
	return fmt.Errorf("wal: giving up (%v)", ErrLogFull)
}

// nonSentinel errors are untouched: local dynamic errors may be compared.
func nonSentinel(err error) bool {
	var sentinel = errors.New("scratch")
	return err == sentinel
}
