// Package baddirective exercises malformed //lint:allow directives, which
// are themselves reported (analyzer "lintdirective") so silent escapes
// cannot accumulate. Checked programmatically in lint_test.go rather than
// with // want comments, since the finding lands on the directive line.
package baddirective

import "fmt"

func noReason(m map[string]int) {
	//lint:allow determinism
	for k := range m {
		fmt.Println(k)
	}
}

func unknownAnalyzer() {
	//lint:allow speling reason present but analyzer name is wrong
	fmt.Println("x")
}
