// Package vthelper is the interprocedural virtualtime fixture: the wall
// clock is read behind a sanctioned helper, and callers with no time.*
// reference of their own are still flagged — an escape covers the site,
// never the functions that call it. The old intraprocedural pass saw
// nothing wrong with elapsed or report.
package vthelper

import "time"

// stamp is the direct leaf; the escape hatch sanctions this one site.
func stamp() int64 {
	//lint:allow virtualtime fixture: sanctioned wall-clock side channel
	return time.Now().UnixNano()
}

// elapsed has no direct time.* reference, but its call graph reaches the
// wall clock one hop away.
func elapsed() int64 {
	return stamp() // want `call reaches the wall clock \(time\.Now\) from a simulated-path package`
}

// report is two hops away; the witness chain names the path.
func report() int64 {
	return elapsed() // want `call reaches the wall clock \(vthelper\.stamp -> time\.Now\) from a simulated-path package`
}

// budget only touches durations: clean.
func budget(d time.Duration) time.Duration { return d + time.Millisecond }
