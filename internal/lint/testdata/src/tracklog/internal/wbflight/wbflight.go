// Package wbflight is a probeguard fixture for write-back pairing: the
// package submits flights but nothing ever lands one, so crashexplore's
// in-flight accounting undercounts torn write-backs.
package wbflight

import "tracklog/internal/sim"

func submit(env *sim.Env, p *sim.Proc) {
	env.EmitProbe(p, sim.ProbeWBStart, "data0", 0, 8) // want `package emits sim\.ProbeWBStart but never sim\.ProbeWBEnd`
}
