// Package span is the second nilguard home-package fixture: Recorder and
// Req both carry the nil-is-disabled contract.
package span

// Recorder mimics the real span recorder.
type Recorder struct {
	reqs   []*Req
	nextID int64
}

// Req mimics the per-request handle; a nil Req is a legal no-op handle.
type Req struct {
	rec *Recorder
	id  int64
}

// NewRecorder is a plain constructor; the contract concerns methods.
func NewRecorder() *Recorder { return &Recorder{} }

// Start follows the contract: guard, then state.
func (r *Recorder) Start() *Req {
	if r == nil {
		return nil
	}
	r.nextID++
	return &Req{rec: r, id: r.nextID}
}

// Len forgets the guard.
func (r *Recorder) Len() int { // want `exported method \(\*Recorder\)\.Len touches receiver state without a nil guard`
	return len(r.reqs)
}

// Done is a guarded Req method.
func (q *Req) Done() {
	if q == nil {
		return
	}
	q.rec.reqs = append(q.rec.reqs, q)
}

// ID forgets the guard on the request handle.
func (q *Req) ID() int64 { // want `exported method \(\*Req\)\.ID touches receiver state without a nil guard`
	return q.id
}
