package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NilGuard machine-checks the nil-is-disabled contract of the
// observability handles: a nil *trace.Tracer, *span.Recorder or *span.Req
// means "tracing off", and the instrumented layers call methods on those
// handles unguarded on every hot path. The contract has two halves:
//
// Home packages (internal/trace, internal/span): every exported method
// with a pointer receiver on a handle type must be nil-receiver safe — it
// either opens with an `if recv == nil` guard (possibly `recv == nil ||
// ...`, short-circuit makes the rest safe), or it never touches receiver
// state directly (only calls other, equally checked, methods). A new
// method that dereferences an unguarded receiver would crash every
// tracing-disabled run the moment a layer calls it.
//
// Consumer packages (everything else): handles are installed only through
// Set*/New* accessors — an unexported handle field assigned anywhere else
// (say, nilling a tracer mid-run) would silently change behaviour between
// two same-seed runs — and a handle is never dereferenced with *, because
// nil is a legal, common value.
var NilGuard = &Analyzer{
	Name: "nilguard",
	Doc:  "enforce the nil-is-disabled contract of trace.Tracer / span.Recorder handles",
	Run:  runNilGuard,
}

// handleTypes maps home package path -> nil-is-disabled type names.
var handleTypes = map[string]map[string]bool{
	"tracklog/internal/trace":     {"Tracer": true},
	"tracklog/internal/span":      {"Recorder": true, "Req": true},
	"tracklog/internal/telemetry": {"Registry": true, "Counter": true, "Gauge": true, "Histogram": true},
	"tracklog/internal/timeline":  {"Aggregator": true, "Lane": true, "Meter": true, "Mark": true},
}

// installedHandles is the subset of handle types with instance lifetime:
// installed once at setup and expected to stay put for the whole run. The
// Set*/New*-only store rule applies to these. span.Req is deliberately
// excluded — it is a request-lifetime handle that layers legitimately stash
// on in-flight request state.
var installedHandles = map[string]bool{
	"trace.Tracer":        true,
	"span.Recorder":       true,
	"telemetry.Registry":  true,
	"telemetry.Counter":   true,
	"telemetry.Gauge":     true,
	"telemetry.Histogram": true,
	"timeline.Aggregator": true,
	"timeline.Lane":       true,
	"timeline.Meter":      true,
	"timeline.Mark":       true,
}

func runNilGuard(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	if names, ok := handleTypes[pass.Path]; ok {
		checkHomeMethods(pass, names)
	}
	checkConsumers(pass)
	return nil
}

// checkHomeMethods verifies nil-receiver safety of exported handle methods.
func checkHomeMethods(pass *Pass, names map[string]bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			tname, recv := recvInfo(fd)
			if tname == "" || !names[tname] {
				continue
			}
			if recv == nil {
				continue // anonymous receiver: state is unreachable
			}
			if hasLeadingNilGuard(pass, fd.Body, recv) {
				continue
			}
			if pos, found := unguardedStateUse(pass, fd.Body, recv); found {
				use := pass.Fset.Position(pos)
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s touches receiver state without a nil guard (first at line %d), breaking the nil-is-disabled contract; open with `if %s == nil { ... }`",
					tname, fd.Name.Name, use.Line, recv.Name)
			}
		}
	}
}

// recvInfo extracts the receiver base type name and the receiver variable
// (nil for `func (*T) M()`), for pointer receivers only.
func recvInfo(fd *ast.FuncDecl) (string, *ast.Ident) {
	if len(fd.Recv.List) != 1 {
		return "", nil
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", nil // value receiver: a copy, nil cannot reach it
	}
	base, ok := star.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	var recv *ast.Ident
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		recv = field.Names[0]
	}
	return base.Name, recv
}

// hasLeadingNilGuard reports whether the first statement of body is
//
//	if recv == nil { return ... }   or   if recv == nil || ... { return ... }
//
// whose then-branch terminates (return or panic).
func hasLeadingNilGuard(pass *Pass, body *ast.BlockStmt, recv *ast.Ident) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !leftmostIsRecvNil(pass, ifs.Cond, recv, token.EQL, token.LOR) {
		return false
	}
	return blockTerminates(ifs.Body)
}

// leftmostIsRecvNil walks the leftmost spine of or/and chains (chainOp) and
// reports whether it bottoms out at `recv <op> nil`.
func leftmostIsRecvNil(pass *Pass, cond ast.Expr, recv *ast.Ident, op, chainOp token.Token) bool {
	for {
		be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op == chainOp {
			cond = be.X
			continue
		}
		if be.Op != op {
			return false
		}
		return (isRecvIdent(pass, be.X, recv) && isNilExpr(pass, be.Y)) ||
			(isRecvIdent(pass, be.Y, recv) && isNilExpr(pass, be.X))
	}
}

func isRecvIdent(pass *Pass, e ast.Expr, recv *ast.Ident) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Info.Uses[id] != nil && pass.Info.Uses[id] == pass.Info.Defs[recv]
}

func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// unguardedStateUse finds the first direct use of receiver state — a field
// selection or a * dereference — that is not inside an `if recv != nil`
// region. Method calls on the receiver are fine: each callee is itself
// checked.
func unguardedStateUse(pass *Pass, body *ast.BlockStmt, recv *ast.Ident) (token.Pos, bool) {
	var found token.Pos
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecvIdent(pass, n.X, recv) {
				return true
			}
			sel, ok := pass.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if !guardedByStack(pass, stack, recv) {
				found = n.Pos()
			}
		case *ast.StarExpr:
			if isRecvIdent(pass, n.X, recv) && !guardedByStack(pass, stack, recv) {
				found = n.Pos()
			}
		}
		return true
	})
	return found, found.IsValid()
}

// guardedByStack reports whether any enclosing if-statement on the inspect
// stack guards with `recv != nil` (leftmost && operand).
func guardedByStack(pass *Pass, stack []ast.Node, recv *ast.Ident) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if leftmostIsRecvNil(pass, ifs.Cond, recv, token.NEQ, token.LAND) {
			return true
		}
	}
	return false
}

// checkConsumers applies the consumer half of the contract in every module
// package: unexported handle fields are written only inside Set*/New*
// functions, and handle values are never dereferenced.
func checkConsumers(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkHandleFieldStore(pass, file, lhs)
				}
			case *ast.StarExpr:
				if isHandleType(pass.typeOf(n.X)) {
					pass.Reportf(n.Pos(),
						"dereferencing a %s handle defeats the nil-is-disabled contract (nil is a legal value); call its nil-safe methods instead",
						handleTypeName(pass.typeOf(n.X)))
				}
			}
			return true
		})
	}
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isHandleType reports whether t is a pointer to one of the nil-is-disabled
// handle types.
func isHandleType(t types.Type) bool {
	return handleTypeName(t) != ""
}

func handleTypeName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	home := NormalizePath(named.Obj().Pkg().Path())
	if names, ok := handleTypes[home]; ok && names[named.Obj().Name()] {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return ""
}

// checkHandleFieldStore flags `x.field = handle` when field is an
// unexported struct field of handle type and the enclosing function is not
// a Set*/New* accessor (or package-scope initialization).
func checkHandleFieldStore(pass *Pass, file *ast.File, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.IsExported() {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !installedHandles[handleTypeName(selection.Obj().Type())] {
		return
	}
	fn := enclosingFuncName(file, lhs.Pos())
	if fn == "" || strings.HasPrefix(fn, "Set") || strings.HasPrefix(fn, "New") ||
		strings.HasPrefix(fn, "set") || strings.HasPrefix(fn, "new") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"handle field %s (%s) is assigned outside a Set*/New* accessor; swapping instrumentation mid-run breaks run-to-run determinism",
		sel.Sel.Name, handleTypeName(selection.Obj().Type()))
}
