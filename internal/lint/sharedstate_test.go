package lint

import "testing"

func TestSharedStateFixture(t *testing.T) {
	// Positive: a package var mutated from two env.Go roots, directly and
	// through a shared helper. Negative: a single-root var, a setup-only
	// write outside every root's closure, and suppressed sites.
	RunFixture(t, "testdata/src/tracklog/internal/sharedst", SharedState)
}
