package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The whole-program layer: per-package function summaries linked into a
// repo-wide call graph with method-set resolution for interface dispatch.
//
// The engine runs on the same stdlib-only loader as the per-package
// analyzers. Because each root package is type-checked from source while its
// dependencies are imported from compiler export data, the same declaration
// can be represented by two distinct types.Object universes (source-checked
// in its home package, export-imported everywhere else). The graph therefore
// keys everything by *normalized string identity* — universe-independent
// function, type, field and variable IDs built from NormalizePath-ed import
// paths — instead of object pointers:
//
//	tracklog/internal/sim.(Env).EmitProbe    method
//	tracklog/internal/trail.writeRecord      function
//	tracklog/internal/trail.Driver           named type
//	tracklog/internal/trail.Driver.seq       field
//	tracklog/internal/wal.ErrLogFull         package-level var
//	tracklog/internal/trail.(Driver).flushLog.func@412  function literal
//
// Interface dispatch is resolved RTA-style: a call through an interface
// method resolves to every named type in the analyzed program whose method
// set structurally implements the interface (method names plus normalized
// signature strings, so implementations match across type-checker
// universes). That covers the repo's own dispatch points — snapshot.
// Snapshotter, trace/span/telemetry handles, blockdev.Device, qos hooks —
// without ever comparing types.Object identities across packages.
//
// In `go vet -vettool` unit mode only one compilation unit has source, so
// the graph degrades to that package's own functions; the whole-program
// analyzers still check everything visible but cannot follow edges into
// units they cannot see. The standalone driver (cmd/trailcheck ./...) and
// TestRealTreeIsClean load the full tree and get the full graph.

// A Program is the whole-program view over one Load result: every function
// summary, every named type, and the indexes the analyzers resolve calls
// and method sets through.
type Program struct {
	Pkgs []*Package

	// Funcs maps normalized function IDs to their summaries. Function
	// literals get synthesized IDs scoped to their enclosing declaration.
	Funcs map[string]*FuncInfo

	// Types maps normalized type IDs ("pkg.Name") of named types declared
	// in the analyzed packages to their summaries.
	Types map[string]*TypeInfo

	// methodIndex maps a method name to the type IDs declaring or promoting
	// a method with that name, for RTA candidate lookup.
	methodIndex map[string][]string

	// allowIndex caches (file, line, analyzer) triples covered by a
	// well-formed //lint:allow directive; built lazily by allowedAt.
	allowIndex map[allowKey]bool

	// shared caches the sharedstate computation (root closures intersected
	// with package-var mutations), which is program-global but reported
	// per-package.
	sharedComputed bool
	shared         []sharedSite

	// timeChains/randChains/sinkChains cache the caller-ward taint closures
	// of the interprocedural virtualtime/determinism halves: function ID ->
	// witness chain down to the offending leaf.
	timeChains map[string][]string
	randChains map[string][]string
	sinkChains map[string][]string
}

// A FuncInfo summarizes one function body: the edges it contributes to the
// call graph and the state it touches.
type FuncInfo struct {
	ID   string
	Pkg  *Package
	File *ast.File
	Pos  token.Pos

	// Decl is the declaration, nil for function literals.
	Decl *ast.FuncDecl

	// Calls holds the normalized IDs of every statically resolved function
	// referenced in the body — called directly or taken as a value (a
	// reference is a potential call; reachability is conservative).
	Calls []CallRef

	// DynCalls holds interface-dispatch sites: method name plus normalized
	// receiver-interface and signature strings, resolved via RTA.
	DynCalls []DynCall

	// Literals holds the IDs of function literals contained directly in
	// this body. A literal passed to a process-spawn API is marked
	// SpawnArg on its own FuncInfo and runs as a separate event-handler
	// root, not as part of this function.
	Literals []string

	// SpawnArg marks a function literal passed directly to sim.Env.Go /
	// GoDaemon: the body runs as its own simulated process.
	SpawnArg bool

	// SpawnTargets holds the IDs of named functions/methods this body
	// passes to sim.Env.Go / GoDaemon — each is an event-handler root.
	SpawnTargets []string

	// FieldRefs records every struct field selection (including each step
	// of promoted/embedded chains and composite-literal keys).
	FieldRefs []FieldRef

	// VarMuts records mutations of package-level variables: direct
	// assignment, assignment through a selector/index chain rooted at the
	// variable, and ++/--.
	VarMuts []VarMut

	// TimeRefs records references to banned wall-clock entry points
	// (time.Now, time.Sleep, ...), called or taken as values.
	TimeRefs []TimeRef

	// RandRefs records references to symbols of the banned rand packages
	// outside the exempt file (seeds for indirect-reach detection).
	RandRefs []token.Pos

	// SinkCalls records direct output-sink calls (fmt printing, JSON/CSV
	// writers, ...) as classified by sinkName.
	SinkCalls []SinkCall

	// ProbeEmits records sim.Env.EmitProbe call sites with the probe-kind
	// constant they pass ("ProbeAck", ...; "?" when not a named constant).
	ProbeEmits []ProbeEmit

	// spawnLitPos holds positions of function literals passed directly to
	// a spawn API, resolved to SpawnArg marks once the walk completes.
	spawnLitPos []token.Pos
}

// A CallRef is one statically resolved function reference.
type CallRef struct {
	ID  string
	Pos token.Pos
}

// A DynCall is one interface-dispatch site.
type DynCall struct {
	Method string // method name
	Sig    string // normalized signature string (receiver excluded)
	Pos    token.Pos
}

// A FieldRef is one struct-field touch, attributed to the named type that
// declares the field.
type FieldRef struct {
	Type  string // normalized type ID of the declaring type
	Field string
	Pos   token.Pos
	Write bool
}

// A VarMut is one package-level variable mutation.
type VarMut struct {
	Var string // normalized "pkg.Name"
	Pos token.Pos
}

// A TimeRef is one banned wall-clock reference.
type TimeRef struct {
	Name string // "Now", "Sleep", ...
	Pos  token.Pos
}

// A SinkCall is one direct output-sink call.
type SinkCall struct {
	Sink string
	Pos  token.Pos
}

// A ProbeEmit is one sim.Env.EmitProbe call site.
type ProbeEmit struct {
	Kind string // constant name ("ProbeAck") or "?" for a computed kind
	Pos  token.Pos
}

// A TypeInfo summarizes one named type declared in an analyzed package.
type TypeInfo struct {
	ID   string
	Pkg  *Package
	Pos  token.Pos
	Obj  *types.TypeName
	Name string

	// Fields lists the struct's own fields in declaration order (empty for
	// non-struct types). Embedded fields appear under their type name.
	Fields []FieldDecl

	// Methods maps method name to the normalized ID of the declared or
	// promoted method body, over the method set of *T.
	Methods map[string]string

	// MethodSigs maps method name to its normalized signature string, for
	// structural interface checks across type-checker universes.
	MethodSigs map[string]string
}

// A FieldDecl is one struct field declaration.
type FieldDecl struct {
	Name     string
	Pos      token.Pos
	Embedded bool

	// Wiring marks fields whose type can never round-trip through a codec
	// byte-for-byte — functions, channels and interfaces — and which
	// snapshotguard therefore treats as non-state.
	Wiring bool
}

// normQualifier renders package paths in universe-independent form, so
// signature strings computed in different type-checker universes compare
// equal.
func normQualifier(p *types.Package) string {
	if p == nil {
		return ""
	}
	return NormalizePath(p.Path())
}

// sigString renders a function signature (receiver excluded, parameter
// names dropped) with normalized package qualifiers, so the same
// declaration renders identically whether it was type-checked from source
// or imported from export data, and regardless of parameter naming.
func sigString(sig *types.Signature) string {
	var b strings.Builder
	b.WriteString("func(")
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		t := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("...")
			if sl, ok := t.(*types.Slice); ok {
				t = sl.Elem()
			}
		}
		b.WriteString(types.TypeString(t, normQualifier))
	}
	b.WriteString(")")
	res := sig.Results()
	switch res.Len() {
	case 0:
	case 1:
		b.WriteString(" ")
		b.WriteString(types.TypeString(res.At(0).Type(), normQualifier))
	default:
		b.WriteString(" (")
		for i := 0; i < res.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(types.TypeString(res.At(i).Type(), normQualifier))
		}
		b.WriteString(")")
	}
	return b.String()
}

// FuncID returns the normalized ID of a function object, or "" when the
// object has no home package (builtins, interface method stubs of the
// universe error type).
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return ""
	}
	path := NormalizePath(fn.Pkg().Path())
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return path + "." + fn.Name()
	}
	recv := recvTypeName(sig.Recv().Type())
	if recv == "" {
		return path + "." + fn.Name()
	}
	return path + ".(" + recv + ")." + fn.Name()
}

// recvTypeName returns the bare receiver type name ("Driver" for *Driver).
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // interface method stub: dispatch is recorded as DynCall
	}
	return ""
}

// typeID returns the normalized ID of a named type, "" for others.
func typeID(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return NormalizePath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// spawn APIs: passing a function here starts a new simulated process, i.e.
// a new event-handler root.
var spawnFuncs = map[string]bool{
	"tracklog/internal/sim.(Env).Go":       true,
	"tracklog/internal/sim.(Env).GoDaemon": true,
}

const emitProbeID = "tracklog/internal/sim.(Env).EmitProbe"

// BuildProgram constructs the whole-program view over pkgs. It never fails:
// unresolvable references simply contribute no edges.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:        pkgs,
		Funcs:       make(map[string]*FuncInfo),
		Types:       make(map[string]*TypeInfo),
		methodIndex: make(map[string][]string),
	}
	for _, pkg := range pkgs {
		prog.addTypes(pkg)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := prog.declID(pkg, fd)
				fi := &FuncInfo{ID: id, Pkg: pkg, File: file, Pos: fd.Pos(), Decl: fd}
				prog.Funcs[id] = fi
				prog.summarize(fi, fd.Body)
			}
		}
	}
	for _, fi := range prog.Funcs {
		fi.markSpawnLiterals(prog)
	}
	return prog
}

// declID computes the normalized ID of a function declaration.
func (prog *Program) declID(pkg *Package, fd *ast.FuncDecl) string {
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if id := FuncID(obj); id != "" {
			return id
		}
	}
	// Fallback for declarations the type checker could not resolve.
	return NormalizePath(pkg.ImportPath) + "." + fd.Name.Name
}

// addTypes registers every named type declared in pkg.
func (prog *Program) addTypes(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				ti := &TypeInfo{
					ID:         NormalizePath(pkg.ImportPath) + "." + obj.Name(),
					Pkg:        pkg,
					Pos:        ts.Pos(),
					Obj:        obj,
					Name:       obj.Name(),
					Methods:    make(map[string]string),
					MethodSigs: make(map[string]string),
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					for _, f := range st.Fields.List {
						if len(f.Names) == 0 {
							ti.Fields = append(ti.Fields, FieldDecl{
								Name:     embeddedFieldName(f.Type),
								Pos:      f.Type.Pos(),
								Embedded: true,
							})
							continue
						}
						wiring := false
						if tv, ok := pkg.Info.Types[f.Type]; ok {
							wiring = isWiringType(tv.Type)
						}
						for _, name := range f.Names {
							ti.Fields = append(ti.Fields, FieldDecl{Name: name.Name, Pos: name.Pos(), Wiring: wiring})
						}
					}
				}
				mset := types.NewMethodSet(types.NewPointer(named))
				for i := 0; i < mset.Len(); i++ {
					m, ok := mset.At(i).Obj().(*types.Func)
					if !ok {
						continue
					}
					sig, ok := m.Type().(*types.Signature)
					if !ok {
						continue
					}
					ti.Methods[m.Name()] = FuncID(m)
					ti.MethodSigs[m.Name()] = sigString(sig)
				}
				prog.Types[ti.ID] = ti
				for name := range ti.Methods {
					prog.methodIndex[name] = append(prog.methodIndex[name], ti.ID)
				}
			}
		}
	}
}

// embeddedFieldName extracts the field name of an embedded type expression.
func embeddedFieldName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return embeddedFieldName(e.X)
	}
	return ""
}

// isWiringType reports whether a field of this type is inherently
// non-snapshotable wiring: functions, channels, and interface handles.
func isWiringType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// summarize walks one function body, filling fi and creating child
// summaries for contained function literals.
func (prog *Program) summarize(fi *FuncInfo, body *ast.BlockStmt) {
	pkg := fi.Pkg
	litSeq := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litSeq++
			pos := pkg.Fset.Position(n.Pos())
			child := &FuncInfo{
				ID:   fmt.Sprintf("%s.func@%d", fi.ID, pos.Line),
				Pkg:  pkg,
				File: fi.File,
				Pos:  n.Pos(),
			}
			// Two literals on one line: disambiguate by sequence.
			if _, taken := prog.Funcs[child.ID]; taken {
				child.ID = fmt.Sprintf("%s.func@%d#%d", fi.ID, pos.Line, litSeq)
			}
			prog.Funcs[child.ID] = child
			fi.Literals = append(fi.Literals, child.ID)
			prog.summarize(child, n.Body)
			return false // children summarized separately
		case *ast.Ident:
			prog.recordIdent(fi, n)
		case *ast.SelectorExpr:
			prog.recordSelector(fi, n)
		case *ast.CompositeLit:
			prog.recordComposite(fi, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				prog.recordMutation(fi, lhs)
			}
		case *ast.IncDecStmt:
			prog.recordMutation(fi, n.X)
		case *ast.CallExpr:
			prog.recordCall(fi, n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// recordIdent registers references to functions and banned rand symbols
// reached through a plain identifier (dot imports aside, function values
// and same-package calls).
func (prog *Program) recordIdent(fi *FuncInfo, id *ast.Ident) {
	obj := fi.Pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	if fn, ok := obj.(*types.Func); ok {
		if fid := FuncID(fn); fid != "" {
			fi.Calls = append(fi.Calls, CallRef{ID: fid, Pos: id.Pos()})
		}
	}
}

// recordSelector registers selector-reached references: qualified function
// uses, banned time/rand symbols, interface dispatch, and field touches.
func (prog *Program) recordSelector(fi *FuncInfo, sel *ast.SelectorExpr) {
	info := fi.Pkg.Info
	obj := info.Uses[sel.Sel]
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if wallClockBanned[fn.Name()] {
				fi.TimeRefs = append(fi.TimeRefs, TimeRef{Name: fn.Name(), Pos: sel.Pos()})
			}
		case "math/rand", "math/rand/v2", "crypto/rand":
			fi.RandRefs = append(fi.RandRefs, sel.Pos())
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				fi.DynCalls = append(fi.DynCalls, DynCall{Method: fn.Name(), Sig: sigString(sig), Pos: sel.Pos()})
				return
			}
		}
		if fid := FuncID(fn); fid != "" {
			fi.Calls = append(fi.Calls, CallRef{ID: fid, Pos: sel.Pos()})
		}
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "math/rand" {
		// math/rand global source values (rand.Reader lives in crypto/rand).
		fi.RandRefs = append(fi.RandRefs, sel.Pos())
	}
	// Field selection: attribute every step of the (possibly promoted)
	// chain to its declaring type.
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		prog.recordFieldChain(fi, sel, selection, false)
	}
}

// recordFieldChain walks a field selection's index path, attributing each
// traversed field to the named type it belongs to.
func (prog *Program) recordFieldChain(fi *FuncInfo, sel *ast.SelectorExpr, selection *types.Selection, write bool) {
	t := selection.Recv()
	for _, idx := range selection.Index() {
		st, ok := derefStruct(t)
		if !ok || idx >= st.NumFields() {
			return
		}
		f := st.Field(idx)
		if id := typeID(t); id != "" {
			fi.FieldRefs = append(fi.FieldRefs, FieldRef{Type: id, Field: f.Name(), Pos: sel.Pos(), Write: write})
		}
		t = f.Type()
	}
}

// derefStruct unwraps pointers and named types down to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// recordComposite registers composite-literal field initializations as
// writes: keyed literals per named key, unkeyed literals for every field.
func (prog *Program) recordComposite(fi *FuncInfo, lit *ast.CompositeLit) {
	info := fi.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	st, ok := derefStruct(t)
	if !ok {
		return
	}
	id := typeID(t)
	if id == "" {
		return
	}
	keyed := false
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			keyed = true
			if key, ok := kv.Key.(*ast.Ident); ok {
				fi.FieldRefs = append(fi.FieldRefs, FieldRef{Type: id, Field: key.Name, Pos: key.Pos(), Write: true})
			}
		}
	}
	if !keyed && len(lit.Elts) > 0 {
		for i := 0; i < st.NumFields(); i++ {
			fi.FieldRefs = append(fi.FieldRefs, FieldRef{Type: id, Field: st.Field(i).Name(), Pos: lit.Pos(), Write: true})
		}
	}
}

// recordMutation classifies one assignment/incdec target: a write to a
// package-level variable (directly or through a selector/index/star chain
// rooted at one), and field writes for each selector on the chain.
func (prog *Program) recordMutation(fi *FuncInfo, lhs ast.Expr) {
	info := fi.Pkg.Info
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if selection, ok := info.Selections[x]; ok && selection.Kind() == types.FieldVal {
				prog.recordFieldChain(fi, x, selection, true)
			}
			e = ast.Unparen(x.X)
			continue
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isPackageVar(v) {
				fi.VarMuts = append(fi.VarMuts, VarMut{
					Var: NormalizePath(v.Pkg().Path()) + "." + v.Name(),
					Pos: lhs.Pos(),
				})
			}
			return
		default:
			return
		}
	}
}

// isPackageVar reports whether v is a package-level variable.
func isPackageVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// recordCall classifies one call site: spawn-API targets, probe emissions,
// and direct output sinks. (The callee edge itself is recorded by the
// ident/selector walk.)
func (prog *Program) recordCall(fi *FuncInfo, call *ast.CallExpr) {
	info := fi.Pkg.Info
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		return
	}
	id := FuncID(callee)

	if spawnFuncs[id] && len(call.Args) >= 2 {
		switch arg := ast.Unparen(call.Args[1]).(type) {
		case *ast.FuncLit:
			// The literal's own FuncInfo is created by the summarize walk;
			// mark it when it appears (its ID is position-derived, so find
			// it afterwards via markSpawnArgs — cheaper: record position).
			fi.spawnLitPos = append(fi.spawnLitPos, arg.Pos())
		case *ast.Ident:
			if fn, ok := info.Uses[arg].(*types.Func); ok {
				if fid := FuncID(fn); fid != "" {
					fi.SpawnTargets = append(fi.SpawnTargets, fid)
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
				if fid := FuncID(fn); fid != "" {
					fi.SpawnTargets = append(fi.SpawnTargets, fid)
				}
			}
		}
	}

	if id == emitProbeID && len(call.Args) >= 2 {
		kind := "?"
		switch arg := ast.Unparen(call.Args[1]).(type) {
		case *ast.SelectorExpr:
			if c, ok := info.Uses[arg.Sel].(*types.Const); ok {
				kind = c.Name()
			}
		case *ast.Ident:
			if c, ok := info.Uses[arg].(*types.Const); ok {
				kind = c.Name()
			}
		}
		fi.ProbeEmits = append(fi.ProbeEmits, ProbeEmit{Kind: kind, Pos: call.Pos()})
	}

	if sink := sinkNameFromFunc(callee); sink != "" {
		fi.SinkCalls = append(fi.SinkCalls, SinkCall{Sink: sink, Pos: call.Pos()})
	}
}

// markSpawnLiterals resolves recorded spawn-argument positions to SpawnArg
// marks on the contained literals, once the whole walk has created them.
func (fi *FuncInfo) markSpawnLiterals(prog *Program) {
	if len(fi.spawnLitPos) == 0 {
		return
	}
	for _, litID := range fi.Literals {
		lit := prog.Funcs[litID]
		for _, pos := range fi.spawnLitPos {
			if lit.Pos == pos {
				lit.SpawnArg = true
			}
		}
	}
}

// Reach computes the set of function IDs reachable from roots over static
// call edges, contained (non-spawned) literals, and — when resolveDyn is
// set — RTA-resolved interface dispatch.
func (prog *Program) Reach(roots []string, resolveDyn bool) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		fi, ok := prog.Funcs[id]
		if !ok {
			continue
		}
		for _, c := range fi.Calls {
			if !seen[c.ID] {
				queue = append(queue, c.ID)
			}
		}
		for _, litID := range fi.Literals {
			if lit := prog.Funcs[litID]; lit != nil && !lit.SpawnArg && !seen[litID] {
				queue = append(queue, litID)
			}
		}
		if resolveDyn {
			for _, dc := range fi.DynCalls {
				for _, target := range prog.ResolveDyn(dc) {
					if !seen[target] {
						queue = append(queue, target)
					}
				}
			}
		}
	}
	return seen
}

// ResolveDyn returns the IDs of every analyzed method that an interface
// dispatch site could invoke: same method name, identical normalized
// signature.
func (prog *Program) ResolveDyn(dc DynCall) []string {
	var out []string
	for _, tid := range prog.methodIndex[dc.Method] {
		ti := prog.Types[tid]
		if ti.MethodSigs[dc.Method] == dc.Sig {
			out = append(out, ti.Methods[dc.Method])
		}
	}
	return out
}

// Roots returns every event-handler root in the program: function literals
// passed to the spawn APIs and named functions passed by reference, in
// deterministic order.
func (prog *Program) Roots() []string {
	var roots []string
	seen := make(map[string]bool)
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			roots = append(roots, id)
		}
	}
	ids := make([]string, 0, len(prog.Funcs))
	for id := range prog.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, t := range prog.Funcs[id].SpawnTargets {
			add(t)
		}
	}
	for _, id := range ids {
		if prog.Funcs[id].SpawnArg {
			add(id)
		}
	}
	sort.Strings(roots)
	return roots
}

// Implements reports whether the named type (by TypeInfo) structurally
// provides every listed method with the given normalized signatures.
func (ti *TypeInfo) Implements(methods map[string]string) bool {
	for name, sig := range methods {
		got, ok := ti.MethodSigs[name]
		if !ok || got != sig {
			return false
		}
	}
	return true
}

// FuncsOfPackage returns the IDs of every function summarized from pkg, in
// deterministic order.
func (prog *Program) FuncsOfPackage(pkg *Package) []string {
	var out []string
	for id, fi := range prog.Funcs {
		if fi.Pkg == pkg {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// DisplayName renders a function ID for diagnostics: the import-path prefix
// is trimmed to the package's base name ("trail.(Driver).flushLog").
func DisplayName(id string) string {
	slash := strings.LastIndex(id, "/")
	if slash < 0 {
		return id
	}
	return id[slash+1:]
}

// taintCallers propagates seeded facts caller-ward: given leaf descriptions
// per directly-offending function, it computes for every function that can
// reach one — through static calls and contained (non-spawned) literals — a
// witness chain from its callee down to the leaf. Seeded functions map to
// their own one-element chain. BFS over sorted worklists keeps chains
// shortest and deterministic.
func (prog *Program) taintCallers(seeds map[string]string) map[string][]string {
	chains := make(map[string][]string, len(seeds))
	if len(seeds) == 0 {
		return chains
	}
	rev := make(map[string][]string)
	for id, fi := range prog.Funcs {
		for _, c := range fi.Calls {
			rev[c.ID] = append(rev[c.ID], id)
		}
		// A literal's taint belongs to the function containing it: the
		// enclosing body runs the literal (spawned literals are their own
		// roots and are excluded).
		for _, lid := range fi.Literals {
			if lit := prog.Funcs[lid]; lit != nil && !lit.SpawnArg {
				rev[lid] = append(rev[lid], id)
			}
		}
	}
	queue := make([]string, 0, len(seeds))
	for id, leaf := range seeds {
		chains[id] = []string{leaf}
		queue = append(queue, id)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		next := append([]string{DisplayName(id)}, chains[id]...)
		callers := append([]string(nil), rev[id]...)
		sort.Strings(callers)
		for _, caller := range callers {
			if _, seen := chains[caller]; seen {
				continue
			}
			chains[caller] = next
			queue = append(queue, caller)
		}
	}
	return chains
}

// renderChain formats a witness chain for a diagnostic, eliding the middle
// of long chains.
func renderChain(chain []string) string {
	if len(chain) > 4 {
		chain = append(append([]string{}, chain[:2]...), "...", chain[len(chain)-1])
	}
	return strings.Join(chain, " -> ")
}

// firstTaintedCall returns the position-first call edge of fi whose callee
// carries a taint chain, or nil.
func firstTaintedCall(fi *FuncInfo, chains map[string][]string) *CallRef {
	var best *CallRef
	for i := range fi.Calls {
		c := &fi.Calls[i]
		if chains[c.ID] == nil {
			continue
		}
		if best == nil || c.Pos < best.Pos {
			best = c
		}
	}
	return best
}

// sinkNameFromFunc is sinkName lifted to a resolved callee, shared between
// the per-package determinism pass and the whole-program summaries.
func sinkNameFromFunc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name
		}
	case "io":
		if name == "WriteString" {
			return "io.WriteString"
		}
	case "os":
		if name == "WriteFile" {
			return "os.WriteFile"
		}
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	recvName := fmt.Sprintf("%s.%s", named.Obj().Pkg().Path(), named.Obj().Name())
	switch recvName {
	case "encoding/json.Encoder":
		if name == "Encode" {
			return "json.Encoder.Encode"
		}
	case "encoding/csv.Writer":
		if name == "Write" || name == "WriteAll" {
			return "csv.Writer." + name
		}
	case "bufio.Writer", "bytes.Buffer", "strings.Builder":
		if strings.HasPrefix(name, "Write") {
			return fmt.Sprintf("%s.%s", named.Obj().Name(), name)
		}
	}
	if NormalizePath(named.Obj().Pkg().Path()) == "tracklog/internal/trace" && named.Obj().Name() == "ChromeWriter" {
		return "trace.ChromeWriter." + name
	}
	return ""
}
