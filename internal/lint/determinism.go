package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism enforces the byte-determinism story: same seed, same bytes,
// in traces, span dumps, bench summaries and reports.
//
// Two rules:
//
//  1. math/rand (v1 and v2) and crypto/rand are banned everywhere except
//     internal/sim/rand.go, the one deterministic generator the stack is
//     allowed to draw from. math/rand's global source can be reseeded from
//     the wall clock by any import in the binary; crypto/rand is
//     nondeterministic by design.
//
//  2. Ranging over a map directly into an output sink is flagged. Map
//     iteration order is randomized per run, so any fmt print, JSON/CSV
//     writer, buffered writer or Chrome trace emission inside a map-range
//     body produces run-dependent bytes. Collect the keys, sort them, and
//     range the sorted slice instead. The check is syntactic (sinks
//     reached through a helper call are not traced), which keeps it
//     predictable; the exporters it guards are all written in the direct
//     style.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand outside internal/sim and map-range iteration into output sinks",
	Run:  runDeterminism,
}

// randExemptPath/randExemptFile name the one file allowed to mention the
// banned rand packages: the simulator's own deterministic source.
const (
	randExemptPath = "tracklog/internal/sim"
	randExemptFile = "rand.go"
)

var bannedRandImports = map[string]string{
	"math/rand":    "math/rand's global source is reseedable from the wall clock",
	"math/rand/v2": "math/rand/v2 is seeded from runtime entropy",
	"crypto/rand":  "crypto/rand is nondeterministic by design",
}

func runDeterminism(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	for _, file := range pass.Files {
		checkRandImports(pass, file)
		checkMapRangeSinks(pass, file)
	}
	return nil
}

func checkRandImports(pass *Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		why, banned := bannedRandImports[path]
		if !banned {
			continue
		}
		pos := pass.Fset.Position(imp.Pos())
		if pass.Path == randExemptPath && filepath.Base(pos.Filename) == randExemptFile {
			continue
		}
		pass.Reportf(imp.Pos(),
			"import of %s breaks reproducibility (%s); draw randomness from sim.Rand (internal/sim/rand.go)",
			path, why)
	}
}

// checkMapRangeSinks flags `for ... := range m { ... sink ... }` where m is
// map-typed and the loop body (including nested statements) contains a call
// to an output sink.
func checkMapRangeSinks(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sink := sinkName(pass, call); sink != "" {
				pass.Reportf(rng.For,
					"map iteration order is randomized, but this range body reaches output sink %s; collect the keys, sort them, and range the sorted slice",
					sink)
				return false
			}
			return true
		})
		return true
	})
}

// sinkName reports the human-readable name of the output sink a call
// targets, or "" if the call is not a sink.
func sinkName(pass *Pass, call *ast.CallExpr) string {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()

	// Package-level print/write functions.
	switch pkg {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name
		}
	case "io":
		if name == "WriteString" {
			return "io.WriteString"
		}
	case "os":
		if name == "WriteFile" {
			return "os.WriteFile"
		}
	}

	// Methods on writer types.
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	recvName := fmt.Sprintf("%s.%s", named.Obj().Pkg().Path(), named.Obj().Name())
	switch recvName {
	case "encoding/json.Encoder":
		if name == "Encode" {
			return "json.Encoder.Encode"
		}
	case "encoding/csv.Writer":
		if name == "Write" || name == "WriteAll" {
			return "csv.Writer." + name
		}
	case "bufio.Writer", "bytes.Buffer", "strings.Builder":
		if strings.HasPrefix(name, "Write") {
			return fmt.Sprintf("%s.%s", named.Obj().Name(), name)
		}
	}
	// Any method on the deterministic trace writer is an emission.
	if NormalizePath(named.Obj().Pkg().Path()) == "tracklog/internal/trace" && named.Obj().Name() == "ChromeWriter" {
		return "trace.ChromeWriter." + name
	}
	return ""
}
