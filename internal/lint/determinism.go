package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism enforces the byte-determinism story: same seed, same bytes,
// in traces, span dumps, bench summaries and reports.
//
// Two rules:
//
//  1. math/rand (v1 and v2) and crypto/rand are banned everywhere except
//     internal/sim/rand.go, the one deterministic generator the stack is
//     allowed to draw from. math/rand's global source can be reseeded from
//     the wall clock by any import in the binary; crypto/rand is
//     nondeterministic by design.
//
//  2. Ranging over a map into an output sink is flagged. Map iteration
//     order is randomized per run, so any fmt print, JSON/CSV writer,
//     buffered writer or Chrome trace emission inside a map-range body
//     produces run-dependent bytes. Collect the keys, sort them, and range
//     the sorted slice instead. The check is whole-program: a sink reached
//     through a helper call (or a chain of them) is traced over the call
//     graph and reported with the witness chain.
//
// Both rules have an interprocedural half built on the call-graph engine:
// a function with no direct banned-rand reference whose call graph still
// reaches one is flagged at its first offending call edge (the sanctioned
// generator internal/sim/rand.go does not seed taint — drawing from
// sim.Rand is the fix, not a finding).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand outside internal/sim and map-range iteration into output sinks",
	Run:  runDeterminism,
}

// randExemptPath/randExemptFile name the one file allowed to mention the
// banned rand packages: the simulator's own deterministic source.
const (
	randExemptPath = "tracklog/internal/sim"
	randExemptFile = "rand.go"
)

var bannedRandImports = map[string]string{
	"math/rand":    "math/rand's global source is reseedable from the wall clock",
	"math/rand/v2": "math/rand/v2 is seeded from runtime entropy",
	"crypto/rand":  "crypto/rand is nondeterministic by design",
}

func runDeterminism(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	for _, file := range pass.Files {
		checkRandImports(pass, file)
		checkMapRangeSinks(pass, file)
	}
	reportIndirectRand(pass)
	return nil
}

// reportIndirectRand flags functions with no banned-rand reference of their
// own whose call graph reaches one (outside the exempt generator).
func reportIndirectRand(pass *Pass) {
	chains := pass.Prog.randTaint()
	for _, fid := range pass.Prog.FuncsOfPackage(pass.CurPkg) {
		fi := pass.Prog.Funcs[fid]
		if len(fi.RandRefs) > 0 {
			continue // a leaf: the direct import check owns it
		}
		if c := firstTaintedCall(fi, chains); c != nil {
			pass.Reportf(c.Pos,
				"call reaches a banned rand package (%s); draw randomness from sim.Rand (internal/sim/rand.go)",
				renderChain(chains[c.ID]))
		}
	}
}

// randTaint seeds the caller-ward taint closure with every banned-rand
// reference outside the exempt generator file.
func (prog *Program) randTaint() map[string][]string {
	if prog.randChains == nil {
		seeds := make(map[string]string)
		for id, fi := range prog.Funcs {
			if len(fi.RandRefs) == 0 {
				continue
			}
			if NormalizePath(fi.Pkg.ImportPath) == randExemptPath &&
				filepath.Base(fi.Pkg.Fset.Position(fi.RandRefs[0]).Filename) == randExemptFile {
				continue
			}
			seeds[id] = "banned rand"
		}
		prog.randChains = prog.taintCallers(seeds)
	}
	return prog.randChains
}

// sinkTaint seeds the caller-ward taint closure with every direct
// output-sink call, for the helper-mediated map-range check.
func (prog *Program) sinkTaint() map[string][]string {
	if prog.sinkChains == nil {
		seeds := make(map[string]string)
		for id, fi := range prog.Funcs {
			if len(fi.SinkCalls) > 0 {
				seeds[id] = fi.SinkCalls[0].Sink
			}
		}
		prog.sinkChains = prog.taintCallers(seeds)
	}
	return prog.sinkChains
}

func checkRandImports(pass *Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		why, banned := bannedRandImports[path]
		if !banned {
			continue
		}
		pos := pass.Fset.Position(imp.Pos())
		if pass.Path == randExemptPath && filepath.Base(pos.Filename) == randExemptFile {
			continue
		}
		pass.Reportf(imp.Pos(),
			"import of %s breaks reproducibility (%s); draw randomness from sim.Rand (internal/sim/rand.go)",
			path, why)
	}
}

// checkMapRangeSinks flags `for ... := range m { ... sink ... }` where m is
// map-typed and the loop body (including nested statements) contains a call
// to an output sink.
func checkMapRangeSinks(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		chains := pass.Prog.sinkTaint()
		done := false
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			if done {
				return false
			}
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sink := sinkName(pass, call); sink != "" {
				pass.Reportf(rng.For,
					"map iteration order is randomized, but this range body reaches output sink %s; collect the keys, sort them, and range the sorted slice",
					sink)
				done = true
				return false
			}
			// Helper-mediated: the callee is not a sink itself but its call
			// graph reaches one.
			if callee := pass.calleeFunc(call); callee != nil {
				if chain := chains[FuncID(callee)]; chain != nil {
					pass.Reportf(rng.For,
						"map iteration order is randomized, but this range body reaches output sink via helper (%s); collect the keys, sort them, and range the sorted slice",
						renderChain(chain))
					done = true
					return false
				}
			}
			return true
		})
		return true
	})
}

// sinkName reports the human-readable name of the output sink a call
// targets, or "" if the call is not a sink. The classification itself lives
// in sinkNameFromFunc (callgraph.go), shared with the whole-program
// summaries.
func sinkName(pass *Pass, call *ast.CallExpr) string {
	return sinkNameFromFunc(pass.calleeFunc(call))
}
