package lint

import (
	"strings"
	"testing"
)

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"tracklog/internal/trail":                                     "tracklog/internal/trail",
		"tracklog/internal/lint/testdata/src/tracklog/internal/trail": "tracklog/internal/trail",
		"a/testdata/src/b/testdata/src/c":                             "c",
		"tracklog/cmd/trailsim":                                       "tracklog/cmd/trailsim",
	}
	for in, want := range cases {
		if got := NormalizePath(in); got != want {
			t.Errorf("NormalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		name   string
		arg    string
		want   []string // expected analyzer names in order (when errSub is empty)
		errSub string   // non-empty: the error must contain this
	}{
		{name: "subset keeps request order", arg: "virtualtime,nilguard", want: []string{"virtualtime", "nilguard"}},
		{name: "whitespace tolerated", arg: " determinism , probeguard ", want: []string{"determinism", "probeguard"}},
		{name: "single analyzer", arg: "snapshotguard", want: []string{"snapshotguard"}},
		{name: "empty list", arg: "", errSub: "empty analyzer list"},
		{name: "only separators", arg: " , ,", errSub: "empty analyzer list"},
		{name: "unknown analyzer", arg: "nosuch", errSub: `unknown analyzer "nosuch"`},
		{name: "duplicate analyzer", arg: "virtualtime,determinism,virtualtime", errSub: `duplicate analyzer "virtualtime"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as, err := ByName(tc.arg)
			if tc.errSub != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("ByName(%q) err = %v, want containing %q", tc.arg, err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("ByName(%q): %v", tc.arg, err)
			}
			got := make([]string, len(as))
			for i, a := range as {
				got[i] = a.Name
			}
			if strings.Join(got, ",") != strings.Join(tc.want, ",") {
				t.Fatalf("ByName(%q) = %v, want %v", tc.arg, got, tc.want)
			}
		})
	}
}

func TestMalformedDirectivesReported(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/tracklog/internal/baddirective")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	var missingReason, unknown, determinism bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "reason is mandatory"):
			missingReason = true
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, `unknown analyzer "speling"`):
			unknown = true
		case d.Analyzer == "determinism":
			// The reasonless directive must NOT suppress the finding it
			// hangs over.
			determinism = true
		}
	}
	if !missingReason {
		t.Errorf("missing-reason directive not reported: %v", diags)
	}
	if !unknown {
		t.Errorf("unknown-analyzer directive not reported: %v", diags)
	}
	if !determinism {
		t.Errorf("malformed directive suppressed the underlying determinism finding: %v", diags)
	}
}

func TestRunOrdersDiagnostics(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/tracklog/internal/trail")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics not ordered: %v before %v", a, b)
		}
	}
}

// TestRealTreeIsClean is the enforced invariant itself: the production
// tree has zero findings. If this fails, either fix the regression or
// justify it in source with //lint:allow.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("%s: %v", p.ImportPath, terr)
		}
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
