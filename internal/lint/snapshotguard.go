package lint

import (
	"sort"
	"strings"
)

// SnapshotGuard enforces snapshot completeness: every stateful field of a
// type whose method set implements snapshot.Snapshotter must be referenced
// on both its encode (Snapshot) and decode (Restore) paths, transitively
// through helpers. A field the simulation mutates but the codec silently
// skips corrupts crash exploration and resume — the restored world diverges
// from the checkpointed one with no error anywhere.
//
// The analysis is whole-program: the encode/decode paths are the call-graph
// closures of the Snapshot/Restore methods (static calls, contained
// literals, RTA-resolved interface dispatch), so fields handled by
// encodeFooStats-style helpers are found wherever the helper lives. A field
// counts as *stateful* when some function outside those closures — and
// outside constructor/wiring writers (New*/Open*/Set*/Register*/Attach*/
// init...) — writes it: state that only ever changes during construction is
// configuration, which the codec may legitimately rebuild instead of
// serialize. Fields whose type is inherently non-serializable wiring
// (funcs, channels, interfaces) are skipped.
//
// Genuinely derived or transient fields are suppressed at the field
// declaration with //lint:allow snapshotguard <reason>.
var SnapshotGuard = &Analyzer{
	Name:             "snapshotguard",
	Doc:              "every stateful field of a snapshot.Snapshotter implementation must round-trip through both Snapshot and Restore",
	Run:              runSnapshotGuard,
	NeedWholeProgram: true,
}

// snapshotterShape is the structural signature of snapshot.Snapshotter,
// matched against normalized method signatures so implementations are
// recognized across type-checker universes.
var snapshotterShape = map[string]string{
	"Snapshot": "func() []byte",
	"Restore":  "func([]byte) error",
}

// wiringWriterPrefixes name the function-name prefixes whose field writes do
// not make a field stateful: constructors and wiring installers run before
// (or outside) the simulation whose state the snapshot must capture.
var wiringWriterPrefixes = []string{
	"New", "new", "Make", "make", "Open", "open",
	"Set", "set", "Register", "register", "Attach", "attach",
	"Init", "init",
}

func runSnapshotGuard(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	prog := pass.Prog
	for _, tid := range sortedTypeIDs(prog, pass.CurPkg) {
		ti := prog.Types[tid]
		if len(ti.Fields) == 0 || !ti.Implements(snapshotterShape) {
			continue
		}
		encode := prog.Reach([]string{ti.Methods["Snapshot"]}, true)
		decode := prog.Reach([]string{ti.Methods["Restore"]}, true)

		encRefs, decRefs := make(map[string]bool), make(map[string]bool)
		// witness maps field name -> one runtime mutation site outside the
		// codec closures, proving the field is live state.
		witness := make(map[string]string)
		for _, fid := range sortedFuncIDs(prog) {
			fi := prog.Funcs[fid]
			inEnc, inDec := encode[fid], decode[fid]
			wiring := isWiringWriter(fid)
			for _, fr := range fi.FieldRefs {
				if fr.Type != ti.ID {
					continue
				}
				if inEnc {
					encRefs[fr.Field] = true
				}
				if inDec {
					decRefs[fr.Field] = true
				}
				if fr.Write && !inEnc && !inDec && !wiring {
					if _, ok := witness[fr.Field]; !ok {
						witness[fr.Field] = DisplayName(fid)
					}
				}
			}
		}

		for _, f := range ti.Fields {
			if f.Embedded || f.Wiring {
				continue
			}
			w, stateful := witness[f.Name]
			if !stateful {
				continue
			}
			var missing []string
			if !encRefs[f.Name] {
				missing = append(missing, "Snapshot")
			}
			if !decRefs[f.Name] {
				missing = append(missing, "Restore")
			}
			if len(missing) == 0 {
				continue
			}
			pass.Reportf(f.Pos,
				"field %s.%s is mutated at runtime (e.g. in %s) but never referenced on the %s path; a skipped field silently corrupts crash exploration and resume (//lint:allow snapshotguard <reason> if genuinely derived/transient)",
				ti.Name, f.Name, w, strings.Join(missing, " and "))
		}
	}
	return nil
}

// isWiringWriter reports whether the function with this ID is a
// constructor/wiring installer whose field writes do not count as runtime
// state mutation. Function literals inherit the classification of their
// enclosing declaration.
func isWiringWriter(id string) bool {
	name := funcBaseName(id)
	if name == "main" {
		return true // binary setup code wires worlds before the run
	}
	for _, p := range wiringWriterPrefixes {
		if strings.HasPrefix(name, p) {
			rest := name[len(p):]
			// "New", "Setup", "SetRecorder" qualify; "news"/"settle" do not:
			// the prefix must end the name or be followed by an upper-case
			// letter (or another word for the all-lower prefixes is fine too,
			// but only when the boundary is upper-case — keep it strict).
			if rest == "" || rest[0] >= 'A' && rest[0] <= 'Z' {
				return true
			}
			if p == "init" && strings.HasPrefix(rest, "ialize") {
				return true
			}
		}
	}
	return false
}

// funcBaseName extracts the declared function name from a normalized
// function ID, attributing literals ("....flushLog.func@412") to their
// enclosing declaration.
func funcBaseName(id string) string {
	if i := strings.Index(id, ".func@"); i >= 0 {
		id = id[:i]
	}
	if i := strings.LastIndex(id, "."); i >= 0 {
		return id[i+1:]
	}
	return id
}

// sortedTypeIDs returns the IDs of every named type declared in pkg, in
// deterministic order.
func sortedTypeIDs(prog *Program, pkg *Package) []string {
	var out []string
	for id, ti := range prog.Types {
		if ti.Pkg == pkg {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// sortedFuncIDs returns every function ID in the program in deterministic
// order.
func sortedFuncIDs(prog *Program) []string {
	out := make([]string, 0, len(prog.Funcs))
	for id := range prog.Funcs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
