// Package lint is a custom static-analysis suite enforcing the invariants
// the whole reproduction rests on and that no off-the-shelf linter checks:
//
//   - virtualtime: all timing in simulated-path packages flows through the
//     simulator's virtual clock. A single stray time.Now silently breaks
//     the microsecond-exact rotational model the head-position prediction
//     depends on.
//   - determinism: all output is byte-deterministic. math/rand is banned
//     outside internal/sim's own deterministic generator, and iterating a
//     Go map directly into an output sink (trace/span exporters, JSON/CSV
//     writers, fmt printing) is flagged because map order is randomized.
//   - errtaxonomy: device errors flow through the sentinel taxonomy with
//     errors.Is and %w wrapping, so retry/QoS budgets keep firing after a
//     layer wraps an error.
//   - nilguard: the nil-is-disabled contract of trace.Tracer, span.Recorder
//     and span.Req — every exported method nil-receiver safe, handles only
//     installed through Set*/New* accessors, never dereferenced.
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape (Analyzer,
// Pass, Diagnostic, analysistest-style fixtures) but is built purely on the
// standard library: packages are enumerated with `go list -deps -export`
// and dependencies are imported from compiler export data, so the checker
// needs nothing beyond the Go toolchain itself.
//
// False positives are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory; a
// suppression without one is itself reported (analyzer "lintdirective").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a lowercase identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full trailcheck suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{VirtualTime, Determinism, ErrTaxonomy, NilGuard}
}

// ByName resolves a comma-separated analyzer list ("virtualtime,nilguard").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer list")
	}
	return out, nil
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's invariant path: the import path with any
	// ".../testdata/src/" prefix stripped, so analysistest fixtures are
	// matched against the same per-package configuration (simulated-path
	// sets, allowlists, home packages) as the real tree.
	Path string

	diags *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// NormalizePath strips any ".../testdata/src/" prefix from an import path,
// mapping fixture packages onto the invariant configuration of the package
// they mimic. Real packages never contain the marker, so this is the
// identity for the production tree.
func NormalizePath(importPath string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(importPath, marker); i >= 0 {
		return importPath[i+len(marker):]
	}
	return importPath
}

// Run applies each analyzer to each package, filters //lint:allow
// suppressions, and returns the surviving diagnostics in deterministic
// order (file, line, column, analyzer, message).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     NormalizePath(pkg.ImportPath),
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		diags = applySuppressions(pkg, diags)
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}

// allowDirective is a parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	own      bool // comment shares its line with code (suppresses that line)
}

const allowPrefix = "//lint:allow"

// applySuppressions drops diagnostics covered by a well-formed
// //lint:allow directive on the same line or the line directly above, and
// reports malformed directives (missing analyzer or reason) as
// "lintdirective" findings so escapes stay auditable.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	// (file, line) -> analyzers suppressed on that line.
	type key struct {
		file string
		line int
	}
	suppressed := make(map[key]map[string]bool)
	var out []Diagnostic

	add := func(file string, line int, analyzer string) {
		k := key{file, line}
		if suppressed[k] == nil {
			suppressed[k] = make(map[string]bool)
		}
		suppressed[k][analyzer] = true
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := pkg.Fset.Position(c.Pos())
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:allowed — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "lintdirective",
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				analyzer := fields[0]
				known := false
				for _, a := range All() {
					if a.Name == analyzer {
						known = true
						break
					}
				}
				if !known {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "lintdirective",
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", analyzer),
					})
					continue
				}
				// Suppress the directive's own line and the line below, so
				// both trailing-comment and comment-above styles work.
				add(pos.Filename, pos.Line, analyzer)
				add(pos.Filename, pos.Line+1, analyzer)
			}
		}
	}

	for _, d := range diags {
		if s := suppressed[key{d.Pos.Filename, d.Pos.Line}]; s != nil && s[d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// enclosingFuncName returns the name of the innermost function declaration
// containing pos ("" when pos is not inside any FuncDecl, e.g. a package
// var initializer). Methods report their bare name, not the receiver.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			name = fd.Name.Name
		}
	}
	return name
}

// pathToFuncObj resolves a call expression to the *types.Func it invokes,
// or nil for non-function calls (conversions, builtins, indirect calls).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
