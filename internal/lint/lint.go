// Package lint is a custom static-analysis suite enforcing the invariants
// the whole reproduction rests on and that no off-the-shelf linter checks:
//
//   - virtualtime: all timing in simulated-path packages flows through the
//     simulator's virtual clock. A single stray time.Now silently breaks
//     the microsecond-exact rotational model the head-position prediction
//     depends on.
//   - determinism: all output is byte-deterministic. math/rand is banned
//     outside internal/sim's own deterministic generator, and iterating a
//     Go map directly into an output sink (trace/span exporters, JSON/CSV
//     writers, fmt printing) is flagged because map order is randomized.
//   - errtaxonomy: device errors flow through the sentinel taxonomy with
//     errors.Is and %w wrapping, so retry/QoS budgets keep firing after a
//     layer wraps an error.
//   - nilguard: the nil-is-disabled contract of trace.Tracer, span.Recorder
//     and span.Req — every exported method nil-receiver safe, handles only
//     installed through Set*/New* accessors, never dereferenced.
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape (Analyzer,
// Pass, Diagnostic, analysistest-style fixtures) but is built purely on the
// standard library: packages are enumerated with `go list -deps -export`
// and dependencies are imported from compiler export data, so the checker
// needs nothing beyond the Go toolchain itself.
//
// False positives are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory; a
// suppression without one is itself reported (analyzer "lintdirective").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a lowercase identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error

	// NeedWholeProgram marks analyzers whose findings assert the *absence*
	// of something in a call-graph closure (a field never encoded, a probe
	// never emitted). On a partial program — go vet's one-unit-at-a-time
	// view — the closure is truncated at package boundaries and absence
	// becomes a false positive, so unit mode skips these; run trailcheck
	// standalone over ./... for the full suite. Analyzers that only *trace*
	// reachability (virtualtime, determinism, sharedstate) merely
	// under-report on a partial graph and stay enabled everywhere.
	NeedWholeProgram bool
}

// All returns the full trailcheck suite in stable order: the four
// per-package passes of PR 5, then the whole-program analyzers built on the
// call-graph engine (callgraph.go).
func All() []*Analyzer {
	return []*Analyzer{VirtualTime, Determinism, ErrTaxonomy, NilGuard, SnapshotGuard, SharedState, ProbeGuard}
}

// ByName resolves a comma-separated analyzer list ("virtualtime,nilguard").
// Unknown names, duplicates, and an effectively empty list are errors.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	picked := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if picked[n] {
			return nil, fmt.Errorf("duplicate analyzer %q", n)
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				picked[n] = true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer list")
	}
	return out, nil
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's invariant path: the import path with any
	// ".../testdata/src/" prefix stripped, so analysistest fixtures are
	// matched against the same per-package configuration (simulated-path
	// sets, allowlists, home packages) as the real tree.
	Path string

	// Prog is the whole-program view over every package of this Run. The
	// whole-program analyzers (snapshotguard, sharedstate, probeguard) and
	// the interprocedural halves of virtualtime/determinism resolve
	// cross-function facts through it; per-package analyzers may ignore it.
	// Each analyzer still runs once per package and must only report
	// diagnostics anchored in that package.
	Prog *Program

	// CurPkg is the *Package this pass inspects (the same object Prog's
	// summaries point at via FuncInfo.Pkg).
	CurPkg *Package

	diags *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// NormalizePath strips any ".../testdata/src/" prefix from an import path,
// mapping fixture packages onto the invariant configuration of the package
// they mimic. Real packages never contain the marker, so this is the
// identity for the production tree.
func NormalizePath(importPath string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(importPath, marker); i >= 0 {
		return importPath[i+len(marker):]
	}
	return importPath
}

// Run applies each analyzer to each package, filters //lint:allow
// suppressions, and returns the surviving diagnostics in deterministic
// order (file, line, column, analyzer, message).
//
// Before the per-package passes run, the whole tree is linked into one
// Program (call graph, method sets, field/var summaries) shared by every
// pass via Pass.Prog, so analyzers can resolve facts across package
// boundaries. Suppressions are likewise collected across every package
// first: a whole-program finding is anchored at a source position that may
// be suppressed in a different package than the one naming it.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := BuildProgram(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     NormalizePath(pkg.ImportPath),
				Prog:     prog,
				CurPkg:   pkg,
				diags:    &all,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	all = applySuppressions(pkgs, all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}

const allowPrefix = "//lint:allow"

// ParseAllowDirective parses one comment's text as a //lint:allow
// directive. notOurs is true when the comment is not a directive at all
// (ordinary comments, //lint:allowed). A directive with a missing analyzer
// or reason parses with malformed=true; otherwise analyzer and reason carry
// the parsed fields. The analyzer name is NOT validated against the suite
// here — the caller decides what names it knows.
func ParseAllowDirective(text string) (analyzer, reason string, malformed, notOurs bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false, true
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", "", false, true // e.g. //lint:allowed — not our directive
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, false
	}
	return fields[0], strings.Join(fields[1:], " "), false, false
}

// applySuppressions drops diagnostics covered by a well-formed
// //lint:allow directive on the same line or the line directly above, and
// reports malformed directives (missing analyzer or reason) as
// "lintdirective" findings so escapes stay auditable. Directives from every
// package are collected before filtering: whole-program analyzers anchor
// findings at declarations that may live in another package than the one
// that surfaced them.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// (file, line) -> analyzers suppressed on that line.
	type key struct {
		file string
		line int
	}
	suppressed := make(map[key]map[string]bool)
	var out []Diagnostic

	add := func(file string, line int, analyzer string) {
		k := key{file, line}
		if suppressed[k] == nil {
			suppressed[k] = make(map[string]bool)
		}
		suppressed[k][analyzer] = true
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					analyzer, _, malformed, notOurs := ParseAllowDirective(c.Text)
					if notOurs {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if malformed {
						out = append(out, Diagnostic{
							Pos:      pos,
							Analyzer: "lintdirective",
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)",
						})
						continue
					}
					known := false
					for _, a := range All() {
						if a.Name == analyzer {
							known = true
							break
						}
					}
					if !known {
						out = append(out, Diagnostic{
							Pos:      pos,
							Analyzer: "lintdirective",
							Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", analyzer),
						})
						continue
					}
					// Suppress the directive's own line and the line below,
					// so both trailing-comment and comment-above styles
					// work.
					add(pos.Filename, pos.Line, analyzer)
					add(pos.Filename, pos.Line+1, analyzer)
				}
			}
		}
	}

	for _, d := range diags {
		if s := suppressed[key{d.Pos.Filename, d.Pos.Line}]; s != nil && s[d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// allowedAt reports whether a well-formed //lint:allow directive for the
// named analyzer covers (file, line) anywhere in the program. The
// interprocedural passes use it to decide whether a sanctioned use site
// should seed taint propagation.
func (prog *Program) allowedAt(analyzer, file string, line int) bool {
	prog.buildAllowIndex()
	return prog.allowIndex[allowKey{file, line, analyzer}]
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

func (prog *Program) buildAllowIndex() {
	if prog.allowIndex != nil {
		return
	}
	prog.allowIndex = make(map[allowKey]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					analyzer, _, malformed, notOurs := ParseAllowDirective(c.Text)
					if notOurs || malformed {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					prog.allowIndex[allowKey{pos.Filename, pos.Line, analyzer}] = true
					prog.allowIndex[allowKey{pos.Filename, pos.Line + 1, analyzer}] = true
				}
			}
		}
	}
}

// enclosingFuncName returns the name of the innermost function declaration
// containing pos ("" when pos is not inside any FuncDecl, e.g. a package
// var initializer). Methods report their bare name, not the receiver.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			name = fd.Name.Name
		}
	}
	return name
}

// pathToFuncObj resolves a call expression to the *types.Func it invokes,
// or nil for non-function calls (conversions, builtins, indirect calls).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
