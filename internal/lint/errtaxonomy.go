package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the sentinel-error discipline the retry and QoS
// machinery depends on. blockdev defines the device-error taxonomy
// (ErrMediaError, ErrTimeout, ErrDeviceFailed, ErrOverload,
// ErrDeadlineExceeded, ...), and trail/qos/wal/txn/... extend it; every
// layer classifies failures with errors.Is so a wrapped error still trips
// the right retry budget.
//
// Three rules, applied to every sentinel (a package-level `Err*` variable
// of type error declared in a module package):
//
//   - err == ErrX / err != ErrX comparisons must be errors.Is: one
//     fmt.Errorf("%w") anywhere below breaks the == forever.
//   - switch err { case ErrX: } is the same bug in switch clothing.
//   - fmt.Errorf wrapping a sentinel must use %w; %v/%s erase the
//     sentinel's identity and with it the caller's ability to classify.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "require errors.Is for sentinel comparisons and %w when wrapping sentinels",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) error {
	if !strings.HasPrefix(pass.Path, "tracklog") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.CallExpr:
				checkSentinelWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf returns the sentinel error variable an expression names, or
// nil. A sentinel is a package-level var of error type whose name starts
// with "Err", declared in a module package.
func sentinelOf(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !strings.HasPrefix(NormalizePath(v.Pkg().Path()), "tracklog") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface()) {
		return nil
	}
	return v
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if s := sentinelOf(pass, side); s != nil {
			other := be.Y
			if side == be.Y {
				other = be.X
			}
			if isNilExpr(pass, other) {
				continue
			}
			pass.Reportf(be.OpPos,
				"%s comparison against sentinel %s.%s breaks once the error is wrapped; use errors.Is(err, %s.%s)",
				be.Op, pkgShort(s), s.Name(), pkgShort(s), s.Name())
			return
		}
	}
}

func checkSentinelSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || !types.Implements(tv.Type, errorInterface()) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass, e); s != nil {
				pass.Reportf(e.Pos(),
					"switch-case comparison against sentinel %s.%s breaks once the error is wrapped; use errors.Is in an if/else chain",
					pkgShort(s), s.Name())
			}
		}
	}
}

// checkSentinelWrap flags fmt.Errorf calls that pass a sentinel but whose
// format string has no %w verb, which erases the sentinel from the chain.
func checkSentinelWrap(pass *Pass, call *ast.CallExpr) {
	fn := pass.calleeFunc(call)
	if fn == nil || !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	var sentinel *types.Var
	for _, arg := range call.Args[1:] {
		if s := sentinelOf(pass, arg); s != nil {
			sentinel = s
			break
		}
	}
	if sentinel == nil {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: can't see the verbs, stay quiet
	}
	if countWrapVerbs(constant.StringVal(tv.Value)) == 0 {
		pass.Reportf(call.Pos(),
			"fmt.Errorf wraps sentinel %s.%s without %%w, so errors.Is stops matching downstream; use %%w (or drop the sentinel from the message)",
			pkgShort(sentinel), sentinel.Name())
	}
}

// countWrapVerbs counts %w verbs in a format string, ignoring %%.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		if format[i+1] == 'w' {
			n++
		}
	}
	return n
}

func pkgShort(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	return v.Pkg().Name()
}
