package lint

import "testing"

func TestNilGuardHomeTracer(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/trace", NilGuard)
}

func TestNilGuardHomeSpan(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/span", NilGuard)
}

func TestNilGuardConsumer(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/stddisk", NilGuard)
}

func TestNilGuardHomeTelemetry(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/telemetry", NilGuard)
}

func TestNilGuardHomeTimeline(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/timeline", NilGuard)
}
