package lint

import "testing"

func TestVirtualTimeFixture(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/internal/trail", VirtualTime)
}

func TestVirtualTimeIndirectFixture(t *testing.T) {
	// The wall clock behind a sanctioned helper: callers with no time.*
	// reference of their own are flagged with the witness chain.
	RunFixture(t, "testdata/src/tracklog/internal/vthelper", VirtualTime)
}

func TestVirtualTimeAllowlist(t *testing.T) {
	RunFixture(t, "testdata/src/tracklog/cmd/reproduce", VirtualTime)
}

func TestVirtualTimeOutOfScope(t *testing.T) {
	// A package outside the simulated-path set is never flagged, whatever
	// it does with the wall clock.
	pkgs, err := Load("", "./testdata/src/tracklog/internal/trail")
	if err != nil {
		t.Fatal(err)
	}
	pkgs[0].ImportPath = "github.com/elsewhere/pkg"
	diags, err := Run(pkgs, []*Analyzer{VirtualTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}
