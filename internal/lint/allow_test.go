package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestAllowEdgeFixture(t *testing.T) {
	// Placement rules: same line and directly-above apply; a directive
	// separated by a blank line or naming a different analyzer does not.
	// Generated-looking files behave exactly like hand-written ones.
	RunFixture(t, "testdata/src/tracklog/internal/allowedge", VirtualTime, Determinism)
}

// TestStackedDirectivesCoverOneLine pins the one-line-two-analyzers case:
// an above-line directive for one analyzer stacks with a trailing directive
// for another, each silencing only its own analyzer on that line.
func TestStackedDirectivesCoverOneLine(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/tracklog/internal/allowedge")
	if err != nil {
		t.Fatal(err)
	}
	var file string
	var line int
	for _, f := range pkgs[0].Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "same-line half of a stacked pair") {
					pos := pkgs[0].Fset.Position(c.Pos())
					file, line = pos.Filename, pos.Line
				}
			}
		}
	}
	if line == 0 {
		t.Fatal("stacked-pair marker not found in the allowedge fixture")
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: file, Line: line}, Analyzer: "virtualtime", Message: "synthetic"},
		{Pos: token.Position{Filename: file, Line: line}, Analyzer: "determinism", Message: "synthetic"},
		{Pos: token.Position{Filename: file, Line: line}, Analyzer: "errtaxonomy", Message: "synthetic"},
	}
	kept := applySuppressions(pkgs, diags)
	names := make([]string, len(kept))
	for i, d := range kept {
		names[i] = d.Analyzer
	}
	if len(kept) != 1 || kept[0].Analyzer != "errtaxonomy" {
		t.Fatalf("stacked directives should drop virtualtime and determinism and keep errtaxonomy; kept %v", names)
	}
}

// FuzzParseAllowDirective pins the parser's invariants on arbitrary
// comment text: it never panics, the malformed/notOurs verdicts are
// mutually exclusive, and a well-formed parse always yields a whitespace-
// free analyzer name and a non-empty reason.
func FuzzParseAllowDirective(f *testing.F) {
	seeds := []string{
		"//lint:allow virtualtime reason",
		"//lint:allow determinism two word reason",
		"//lint:allow",
		"//lint:allow ",
		"//lint:allow  ",
		"//lint:allow snapshotguard",
		"//lint:allowed not our directive",
		"//lint:allow\tdeterminism\ttabbed reason",
		"// an ordinary comment",
		"/* a block comment */",
		"",
		"//lint:allow \x00 nul",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, malformed, notOurs := ParseAllowDirective(text)
		if malformed && notOurs {
			t.Fatalf("ParseAllowDirective(%q): malformed and notOurs are mutually exclusive", text)
		}
		if (malformed || notOurs) && (analyzer != "" || reason != "") {
			t.Fatalf("ParseAllowDirective(%q) = (%q, %q, %v, %v): rejected input must carry no fields",
				text, analyzer, reason, malformed, notOurs)
		}
		if !malformed && !notOurs {
			if analyzer == "" || reason == "" {
				t.Fatalf("ParseAllowDirective(%q): well-formed parse with empty analyzer or reason", text)
			}
			if strings.ContainsAny(analyzer, " \t") {
				t.Fatalf("ParseAllowDirective(%q): analyzer %q contains whitespace", text, analyzer)
			}
		}
	})
}
