package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds type-check problems. Analyzers still run on a
	// partially checked package, but the driver reports these and exits
	// with a load failure so a broken tree can't silently pass the gate.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, "" for
// the current directory), type-checks each matched package from source,
// and resolves every dependency — standard library and in-module alike —
// from compiler export data produced by `go list -export`. Only the Go
// toolchain is required; there is no dependency on go/packages.
//
// Test files are not loaded: the enforced invariants govern the simulated
// stack itself, while tests legitimately use wall-clock timeouts and
// unsorted map iteration in assertions.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range roots {
		if p.Error != nil && len(p.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		pkg := &Package{ImportPath: p.ImportPath, Dir: p.Dir, Fset: fset}
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(p.ImportPath, fset, pkg.Files, info)
		pkg.Types = tpkg
		pkg.Info = info
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
