package tracklog_test

import (
	"bytes"
	"testing"
	"time"

	"tracklog"
)

func TestSystemWriteReadRoundTrip(t *testing.T) {
	sys, err := tracklog.NewSystem(tracklog.SystemConfig{DataDisks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	want := bytes.Repeat([]byte{0x42}, 8*tracklog.SectorSize)
	var got []byte
	sys.Go("client", func(p *tracklog.Proc) {
		dev := sys.Trail.Dev(1)
		if err := dev.Write(p, 4096, 8, want); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err = dev.Read(p, 4096, 8)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	sys.Run()
	if !bytes.Equal(got, want) {
		t.Error("round trip mismatch")
	}
}

func TestSystemSyncWriteLatency(t *testing.T) {
	sys, err := tracklog.NewSystem(tracklog.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var lat time.Duration
	sys.Go("client", func(p *tracklog.Proc) {
		dev := sys.Trail.Dev(0)
		dev.Write(p, 0, 2, make([]byte, 2*tracklog.SectorSize)) // warm reference
		p.Sleep(20 * time.Millisecond)
		start := p.Now()
		dev.Write(p, 10000, 2, make([]byte, 2*tracklog.SectorSize))
		lat = p.Now().Sub(start)
	})
	sys.Run()
	// The headline: a synchronous write in ~transfer + command overhead.
	if lat > 2*time.Millisecond {
		t.Errorf("1KB sync write = %v, want < 2ms", lat)
	}
}

func TestSystemCrashRecoverCycle(t *testing.T) {
	sys, err := tracklog.NewSystem(tracklog.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, tracklog.SectorSize)
	logged := false
	sys.Go("client", func(p *tracklog.Proc) {
		if err := sys.Trail.Dev(0).Write(p, 123, 1, want); err != nil {
			t.Errorf("write: %v", err)
		}
		logged = true
	})
	// Run just past the log write, then cut power before write-back.
	for i := 0; i < 100 && !logged; i++ {
		sys.RunUntil(sys.Env.Now().Add(time.Millisecond))
	}
	if !logged {
		t.Fatal("write never became durable")
	}
	sys.Crash()

	recovered, rep, err := sys.Recover(tracklog.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if rep.Clean || rep.RecordsFound == 0 {
		t.Fatalf("report %+v", rep)
	}
	var got []byte
	recovered.Go("client", func(p *tracklog.Proc) {
		got, err = recovered.Trail.Dev(0).Read(p, 123, 1)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	recovered.Run()
	if !bytes.Equal(got, want) {
		t.Error("data lost across crash")
	}
}

func TestStandardDeviceBaseline(t *testing.T) {
	env := tracklog.NewEnv()
	defer env.Close()
	d := tracklog.NewDisk(env, tracklog.WDCaviar())
	dev := tracklog.NewStandardDevice(env, d, tracklog.DevID{Major: 3})
	var lat time.Duration
	env.Go("client", func(p *tracklog.Proc) {
		start := p.Now()
		if err := dev.Write(p, 999999, 2, make([]byte, 2*tracklog.SectorSize)); err != nil {
			t.Errorf("write: %v", err)
		}
		lat = p.Now().Sub(start)
	})
	env.Run()
	if lat < 5*time.Millisecond {
		t.Errorf("baseline write %v suspiciously fast", lat)
	}
}

func TestDriveProfiles(t *testing.T) {
	st := tracklog.ST41601N()
	if st.Geom.TotalTracks() != 35717 {
		t.Error("ST41601N track count wrong")
	}
	wd := tracklog.WDCaviar()
	if wd.Geom.TotalTracks() < 100000 {
		t.Error("WDCaviar track count wrong")
	}
}

func TestSystemMultiLog(t *testing.T) {
	sys, err := tracklog.NewSystem(tracklog.SystemConfig{LogDisks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.LogDisks) != 2 || sys.Trail.NumLogDisks() != 2 {
		t.Fatalf("log disks = %d", len(sys.LogDisks))
	}
	logged := false
	sys.Go("client", func(p *tracklog.Proc) {
		for i := 0; i < 6; i++ {
			if err := sys.Trail.Dev(0).Write(p, int64(i*64), 1, make([]byte, tracklog.SectorSize)); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		logged = true
	})
	for i := 0; i < 200 && !logged; i++ {
		sys.RunUntil(sys.Env.Now().Add(time.Millisecond))
	}
	if !logged {
		t.Fatal("writes never completed")
	}
	sys.Crash()
	recovered, rep, err := sys.Recover(tracklog.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if rep.Clean {
		t.Error("multi-log crash reported clean")
	}
	var got []byte
	recovered.Go("reader", func(p *tracklog.Proc) {
		got, err = recovered.Trail.Dev(0).Read(p, 0, 1)
	})
	recovered.Run()
	if err != nil || len(got) != tracklog.SectorSize {
		t.Errorf("read after multi-log recovery: %v", err)
	}
}
