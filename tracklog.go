// Package tracklog is a library reproduction of "Track-Based Disk Logging"
// (Chiueh & Huang, DSN 2002): the Trail low-write-latency disk subsystem,
// the rotational disk models it runs on, the standard-subsystem baseline it
// is compared against, and the workloads (raw synchronous writes, TPC-C
// transaction processing) of the paper's evaluation.
//
// Everything runs on a deterministic virtual clock, so experiments are
// reproducible bit-for-bit and "latency" always means simulated disk time,
// reported in real units.
//
// The quickest way in is a System, which assembles the paper's hardware:
//
//	sys, err := tracklog.NewSystem(tracklog.SystemConfig{DataDisks: 1})
//	...
//	sys.Go("writer", func(p *tracklog.Proc) {
//		dev := sys.Trail.Dev(0)
//		dev.Write(p, 0, 8, make([]byte, 8*512)) // durable in ~1.5 ms
//	})
//	sys.Run()
//
// Lower-level packages are re-exported through type aliases below; the
// experiment harness reproducing each of the paper's tables and figures
// lives in internal/experiments and is driven by the cmd/ tools and the
// repository-level benchmarks.
package tracklog

import (
	"fmt"

	"tracklog/internal/blockdev"
	"tracklog/internal/disk"
	"tracklog/internal/fault"
	"tracklog/internal/geom"
	"tracklog/internal/sched"
	"tracklog/internal/sim"
	"tracklog/internal/stddisk"
	"tracklog/internal/trail"
)

// Core simulation types.
type (
	// Env is a discrete-event simulation environment (virtual clock).
	Env = sim.Env
	// Proc is a simulated process; all blocking I/O takes one.
	Proc = sim.Proc
	// Time is an instant of virtual time.
	Time = sim.Time
	// Rand is the deterministic random source used everywhere.
	Rand = sim.Rand
)

// Disk and driver types.
type (
	// Disk is a rotational drive model.
	Disk = disk.Disk
	// DiskParams describes a drive's geometry and mechanics.
	DiskParams = disk.Params
	// Geometry is a drive's physical layout.
	Geometry = geom.Geometry
	// Driver is the Trail driver (the paper's contribution).
	Driver = trail.Driver
	// TrailConfig tunes the Trail driver.
	TrailConfig = trail.Config
	// Device is the synchronous block device interface both the Trail
	// driver and the baseline expose.
	Device = blockdev.Device
	// DevID names a data disk (major/minor).
	DevID = blockdev.DevID
	// RecoverOptions tunes crash recovery.
	RecoverOptions = trail.RecoverOptions
	// RecoverReport describes a completed recovery.
	RecoverReport = trail.RecoverReport
	// FaultConfig describes a deterministic media-fault scenario for one
	// drive (latent sector errors, transient timeouts, growing defects,
	// whole-device failure).
	FaultConfig = fault.Config
	// FaultPlan is a sampled fault scenario attached to a drive.
	FaultPlan = fault.Plan
)

// NewEnv returns a fresh simulation environment.
func NewEnv() *Env { return sim.NewEnv() }

// NewRand returns a deterministic random source.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// ST41601N returns the paper's log disk profile (Seagate 5400-RPM SCSI,
// 1.37 GB, 35,717 tracks).
func ST41601N() DiskParams { return disk.ST41601N() }

// WDCaviar returns the paper's data disk profile (WD 5400-RPM IDE, ~10 GB).
func WDCaviar() DiskParams { return disk.WDCaviar() }

// NewDisk creates a drive on env.
func NewDisk(env *Env, params DiskParams) *Disk { return disk.New(env, params) }

// FormatLogDisk initializes a drive as a Trail log disk.
func FormatLogDisk(d *Disk) error { return trail.Format(d) }

// DefaultTrailConfig returns the paper's Trail configuration.
func DefaultTrailConfig() TrailConfig { return trail.Default() }

// NewTrail creates the Trail driver over a formatted log disk and data
// disks. It returns trail.ErrNeedsRecovery after a crash; run Recover.
func NewTrail(env *Env, log *Disk, data []*Disk, cfg TrailConfig) (*Driver, error) {
	return trail.NewDriver(env, log, data, cfg)
}

// NewStandardDevice exposes a drive as the paper's baseline: synchronous
// in-place I/O behind a LOOK elevator.
func NewStandardDevice(env *Env, d *Disk, id DevID) Device {
	return stddisk.New(env, d, id, sched.LOOK)
}

// Recover runs Trail crash recovery on a log disk, replaying pending
// records onto devs.
func Recover(p *Proc, log *Disk, devs map[DevID]Device, opts RecoverOptions) (*RecoverReport, error) {
	return trail.Recover(p, log, devs, opts)
}

// AttachFaults samples a fault plan for d from rng and installs it on the
// drive. The plan is fully sampled up front, so the same seed and config
// reproduce the same faults at the same virtual instants.
func AttachFaults(d *Disk, rng *Rand, cfg FaultConfig) *FaultPlan {
	return fault.Attach(d, rng, cfg)
}

// ParseFaultScenario parses the compact key=value fault DSL (e.g.
// "latent=3,timeout=1,failat=30s") into a FaultConfig.
func ParseFaultScenario(s string) (FaultConfig, error) { return fault.ParseScenario(s) }

// SystemConfig sizes a NewSystem.
type SystemConfig struct {
	// DataDisks is the number of data disks behind the Trail driver
	// (default 1; the paper uses up to 3).
	DataDisks int
	// LogDisks is the number of log disks (default 1; more than one
	// enables the paper's section 5.1 repositioning-hiding optimization).
	LogDisks int
	// LogDisk overrides the log disk profile (default ST41601N).
	LogDisk *DiskParams
	// DataDisk overrides the data disk profile (default WDCaviar).
	DataDisk *DiskParams
	// Trail tunes the driver (zero value = paper defaults).
	Trail TrailConfig
}

// System is an assembled Trail storage system on its own environment: the
// paper's Figure 1 hardware in one value.
type System struct {
	Env       *Env
	LogDisk   *Disk // the first log disk (see LogDisks for all)
	LogDisks  []*Disk
	DataDisks []*Disk
	Trail     *Driver
}

// NewSystem builds a freshly formatted Trail system.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.DataDisks <= 0 {
		cfg.DataDisks = 1
	}
	logP := ST41601N()
	if cfg.LogDisk != nil {
		logP = *cfg.LogDisk
	}
	dataP := WDCaviar()
	if cfg.DataDisk != nil {
		dataP = *cfg.DataDisk
	}
	if cfg.LogDisks <= 0 {
		cfg.LogDisks = 1
	}
	env := sim.NewEnv()
	var logs []*Disk
	for i := 0; i < cfg.LogDisks; i++ {
		lg := disk.New(env, logP)
		if err := trail.Format(lg); err != nil {
			env.Close()
			return nil, fmt.Errorf("tracklog: formatting log disk %d: %w", i, err)
		}
		logs = append(logs, lg)
	}
	var data []*Disk
	for i := 0; i < cfg.DataDisks; i++ {
		data = append(data, disk.New(env, dataP))
	}
	drv, err := trail.NewDriverMulti(env, logs, data, cfg.Trail)
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("tracklog: starting driver: %w", err)
	}
	return &System{Env: env, LogDisk: logs[0], LogDisks: logs, DataDisks: data, Trail: drv}, nil
}

// Go spawns a simulated process (sugar over Env.Go).
func (s *System) Go(name string, fn func(p *Proc)) { s.Env.Go(name, fn) }

// Run drives the simulation until idle and returns the final virtual time.
func (s *System) Run() Time { return s.Env.Run() }

// RunUntil drives the simulation up to the deadline.
func (s *System) RunUntil(t Time) Time { return s.Env.RunUntil(t) }

// Close unwinds the environment (always call when done).
func (s *System) Close() { s.Env.Close() }

// Crash cuts power: every in-flight operation is lost, media survive. The
// system is unusable afterwards; call Recover to reboot into a recovered
// system.
func (s *System) Crash() { s.Env.Close() }

// Recover reboots a crashed system: it reattaches the surviving disks to a
// fresh environment, runs Trail recovery (replaying pending records to the
// data disks), and returns the recovered system alongside the recovery
// report.
func (s *System) Recover(opts RecoverOptions) (*System, *RecoverReport, error) {
	env := sim.NewEnv()
	for _, lg := range s.LogDisks {
		lg.Reattach(env)
	}
	devs := map[DevID]Device{}
	for i, d := range s.DataDisks {
		d.Reattach(env)
		id := DevID{Major: 8, Minor: uint8(i)}
		devs[id] = stddisk.New(env, d, id, sched.LOOK)
	}
	var rep *RecoverReport
	var err error
	env.Go("recovery", func(p *Proc) {
		rep, err = trail.RecoverLogs(p, s.LogDisks, devs, opts)
	})
	env.Run()
	if err != nil {
		env.Close()
		return nil, nil, fmt.Errorf("tracklog: recovery: %w", err)
	}
	if opts.SkipWriteBack && !rep.Clean {
		// The log still holds the pending records; a driver cannot start
		// until they are propagated. Return the report only.
		env.Close()
		return nil, rep, nil
	}
	drv, err := trail.NewDriverMulti(env, s.LogDisks, s.DataDisks, trail.Default())
	if err != nil {
		env.Close()
		return nil, rep, fmt.Errorf("tracklog: restarting driver: %w", err)
	}
	return &System{Env: env, LogDisk: s.LogDisks[0], LogDisks: s.LogDisks, DataDisks: s.DataDisks, Trail: drv}, rep, nil
}

// SectorSize is the fixed sector size in bytes.
const SectorSize = geom.SectorSize
